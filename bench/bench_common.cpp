#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mrlg::bench {

Json Json::object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
}

Json Json::array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json Json::num(double v) {
    Json j;
    j.type_ = Type::kNumber;
    j.number_ = v;
    return j;
}

Json Json::num(std::int64_t v) {
    Json j;
    j.type_ = Type::kInteger;
    j.integer_ = v;
    return j;
}

Json Json::num(std::size_t v) {
    return num(static_cast<std::int64_t>(v));
}

Json Json::str(std::string v) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(v);
    return j;
}

Json Json::boolean(bool v) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = v;
    return j;
}

Json& Json::set(const std::string& key, Json v) {
    MRLG_ASSERT(type_ == Type::kObject, "Json::set on a non-object");
    for (auto& [k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
}

Json& Json::push(Json v) {
    MRLG_ASSERT(type_ == Type::kArray, "Json::push on a non-array");
    elements_.push_back(std::move(v));
    return *this;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void write_indent(std::ostream& os, int indent) {
    for (int i = 0; i < indent; ++i) {
        os << "  ";
    }
}

}  // namespace

void Json::write(std::ostream& os, int indent) const {
    switch (type_) {
        case Type::kNull:
            os << "null";
            break;
        case Type::kBool:
            os << (bool_ ? "true" : "false");
            break;
        case Type::kInteger:
            os << integer_;
            break;
        case Type::kNumber: {
            if (!std::isfinite(number_)) {
                os << "null";  // JSON has no inf/nan
                break;
            }
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.10g", number_);
            os << buf;
            break;
        }
        case Type::kString:
            write_escaped(os, string_);
            break;
        case Type::kObject: {
            if (members_.empty()) {
                os << "{}";
                break;
            }
            os << "{\n";
            for (std::size_t i = 0; i < members_.size(); ++i) {
                write_indent(os, indent + 1);
                write_escaped(os, members_[i].first);
                os << ": ";
                members_[i].second.write(os, indent + 1);
                os << (i + 1 < members_.size() ? ",\n" : "\n");
            }
            write_indent(os, indent);
            os << '}';
            break;
        }
        case Type::kArray: {
            if (elements_.empty()) {
                os << "[]";
                break;
            }
            os << "[\n";
            for (std::size_t i = 0; i < elements_.size(); ++i) {
                write_indent(os, indent + 1);
                elements_[i].write(os, indent + 1);
                os << (i + 1 < elements_.size() ? ",\n" : "\n");
            }
            write_indent(os, indent);
            os << ']';
            break;
        }
    }
}

bool write_json_file(const std::string& path, const Json& root) {
    std::ofstream os(path);
    if (!os) {
        MRLG_LOG(kError) << "cannot open " << path << " for writing";
        return false;
    }
    root.write(os, 0);
    os << "\n";
    return static_cast<bool>(os);
}

Args::Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        argv_.emplace_back(argv[i]);
    }
}

double Args::get_double(const std::string& key, double def) const {
    for (std::size_t i = 0; i + 1 < argv_.size(); ++i) {
        if (argv_[i] == key) {
            return std::atof(argv_[i + 1].c_str());
        }
    }
    return def;
}

int Args::get_int(const std::string& key, int def) const {
    for (std::size_t i = 0; i + 1 < argv_.size(); ++i) {
        if (argv_[i] == key) {
            return std::atoi(argv_[i + 1].c_str());
        }
    }
    return def;
}

bool Args::has_flag(const std::string& key) const {
    for (const auto& a : argv_) {
        if (a == key) {
            return true;
        }
    }
    return false;
}

std::string Args::get_string(const std::string& key,
                             const std::string& def) const {
    for (std::size_t i = 0; i + 1 < argv_.size(); ++i) {
        if (argv_[i] == key) {
            return argv_[i + 1];
        }
    }
    return def;
}

void reset_placement(Database& db, SegmentGrid& grid) {
    for (const CellId c : db.movable_cells()) {
        if (db.cell(c).placed()) {
            grid.remove(db, c);
        }
    }
}

RunMetrics run_legalization(Database& db, SegmentGrid& grid,
                            const LegalizerOptions& opts) {
    RunMetrics m;
    m.gp_hpwl_m = hpwl_m(db, PositionSource::kGlobalPlacement);

    const LegalizerStats stats = legalize_placement(db, grid, opts);
    m.success = stats.success;
    m.runtime_s = stats.runtime_s;
    m.direct = stats.direct_placements;
    m.mll = stats.mll_successes;
    m.points_evaluated = stats.mll_points_evaluated;

    LegalityOptions lopts;
    lopts.check_rail_alignment = opts.mll.check_rail;
    lopts.num_threads = opts.num_threads;
    lopts.require_all_placed = true;
    const LegalityReport rep = check_legality(db, grid, lopts);
    if (!rep.legal) {
        MRLG_LOG(kError) << "bench produced an illegal placement ("
                         << rep.messages.size() << "+ violations)";
        m.success = false;
    }

    const DisplacementStats d = displacement_stats(db);
    m.disp_avg_sites = d.avg_sites;
    m.disp_max_sites = d.max_sites;
    m.dhpwl_pct = hpwl_delta(db) * 100.0;
    return m;
}

}  // namespace mrlg::bench
