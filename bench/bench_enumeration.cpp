/// bench_enumeration — Ablation C (DESIGN.md): §5.1.3 claims the naive
/// permutation enumeration of insertion points is "computationally
/// impractical" while the scanline+queues algorithm is fast. Microbenchmark
/// of both on local regions of growing cell count and target height.

#include <benchmark/benchmark.h>

#include "legalize/enumeration.hpp"
#include "legalize/greedy.hpp"
#include "legalize/insertion_interval.hpp"
#include "legalize/local_region.hpp"
#include "legalize/minmax_placement.hpp"
#include "util/rng.hpp"

namespace {

using namespace mrlg;

/// Builds a *tightly packed* local problem with `cells_per_row` cells on
/// each of `rows` rows: little slack means each interval's feasible range
/// is short, so only a tiny fraction of the cartesian product of gaps has
/// a common cutline. This is where the scanline's output-sensitivity beats
/// the naive full-product enumeration (paper §5.1.3).
struct Fixture {
    Database db;
    SegmentGrid grid;
    LocalProblem lp;
    std::vector<InsertionInterval> intervals;
    TargetSpec target;

    Fixture(int rows, int cells_per_row, int target_h)
        : db(Floorplan(static_cast<SiteCoord>(rows),
                       static_cast<SiteCoord>(cells_per_row * 8 + 4))),
          grid(SegmentGrid::build(db)) {
        Rng rng(7);
        for (int r = 0; r < rows; ++r) {
            for (int i = 0; i < cells_per_row; ++i) {
                const CellId id = db.add_cell(
                    Cell("c" + std::to_string(r) + "_" + std::to_string(i),
                         7, 1));
                // 7 wide in an 8-site slot: ~12% slack.
                grid.place(db, id,
                           static_cast<SiteCoord>(
                               i * 8 + rng.uniform(0, 1)),
                           static_cast<SiteCoord>(r));
            }
        }
        const LocalRegion region = extract_local_region(
            db, grid,
            Rect{0, 0, static_cast<SiteCoord>(cells_per_row * 8),
                 static_cast<SiteCoord>(rows)});
        lp = LocalProblem::build(db, region);
        compute_minmax_placement(lp);
        target.w = 2;
        target.h = static_cast<SiteCoord>(target_h);
        target.rail_phase = RailPhase::kEven;
        intervals = build_insertion_intervals(lp, target.w);
    }
};

void BM_Scanline(benchmark::State& state) {
    Fixture f(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)),
              static_cast<int>(state.range(2)));
    EnumerationOptions opts;
    opts.check_rail = false;
    std::size_t points = 0;
    for (auto _ : state) {
        const auto res =
            enumerate_insertion_points(f.lp, f.intervals, f.target, opts);
        points = res.points.size();
        benchmark::DoNotOptimize(res.points.data());
    }
    state.counters["points"] = static_cast<double>(points);
    state.counters["local_cells"] = static_cast<double>(f.lp.num_cells());
}

void BM_Naive(benchmark::State& state) {
    Fixture f(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)),
              static_cast<int>(state.range(2)));
    EnumerationOptions opts;
    opts.check_rail = false;
    std::size_t points = 0;
    for (auto _ : state) {
        const auto res = naive_enumerate_insertion_points(
            f.lp, f.intervals, f.target, opts);
        points = res.points.size();
        benchmark::DoNotOptimize(res.points.data());
    }
    state.counters["points"] = static_cast<double>(points);
}

}  // namespace

// Args: {rows, cells_per_row, target_height}.
BENCHMARK(BM_Scanline)
    ->Args({4, 8, 1})
    ->Args({4, 8, 2})
    ->Args({4, 8, 3})
    ->Args({8, 16, 2})
    ->Args({8, 16, 3})
    ->Args({12, 24, 2})
    ->Args({12, 24, 3})
    ->Unit(benchmark::kMicrosecond);

// The naive odometer enumerates the full cartesian product; keep sizes
// modest so the bench binary terminates quickly.
BENCHMARK(BM_Naive)
    ->Args({4, 8, 1})
    ->Args({4, 8, 2})
    ->Args({4, 8, 3})
    ->Args({8, 16, 2})
    ->Args({8, 16, 3})
    ->Args({12, 24, 2})
    ->Args({12, 24, 3})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
