/// bench_baselines — Ablation D (DESIGN.md): quantifies the paper's §1
/// motivation against the classic alternatives.
///  (1) Greedy/Tetris (placed cells never move, Hill [7]) vs MLL across a
///      density sweep — greedy displacement blows up at high density.
///  (2) Abacus [3] on a single-row-height design (its home turf) vs MLL,
///      and its rejection of multi-row designs.
///
/// Flags: --cells N (default 4000)

#include <iostream>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "legalize/abacus.hpp"
#include "legalize/greedy.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace mrlg;
using namespace mrlg::bench;

namespace {

GenProfile profile_for(double density, std::size_t cells, bool multi_row) {
    GenProfile p;
    p.name = "sweep";
    p.num_single = multi_row ? cells * 9 / 10 : cells;
    p.num_double = multi_row ? cells / 10 : 0;
    p.density = density;
    p.seed = 12345 + static_cast<std::uint64_t>(density * 100);
    return p;
}

}  // namespace

int main(int argc, char** argv) {
    Args args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const std::size_t cells =
        static_cast<std::size_t>(args.get_int("--cells", 4000));

    std::cout << "=== Ablation D1: greedy (no placed-cell movement) vs MLL "
                 "across density (paper 1's motivation) ===\n";
    Table t1({"Density", "Disp greedy", "Disp MLL", "Ratio",
              "Greedy unplaced", "MLL unplaced"});
    for (const double density : {0.3, 0.5, 0.7, 0.8, 0.9}) {
        const GenProfile p = profile_for(density, cells, true);
        GenResult gen = generate_benchmark(p);
        SegmentGrid grid = SegmentGrid::build(gen.db);

        GreedyOptions gopts;
        const GreedyStats gs = greedy_legalize(gen.db, grid, gopts);
        const double disp_greedy = displacement_stats(gen.db).avg_sites;

        reset_placement(gen.db, grid);
        LegalizerOptions mopts;
        const LegalizerStats ms = legalize_placement(gen.db, grid, mopts);
        const double disp_mll = displacement_stats(gen.db).avg_sites;

        t1.add_row({format_fixed(density, 2), format_fixed(disp_greedy, 3),
                    format_fixed(disp_mll, 3),
                    format_fixed(disp_mll > 0 ? disp_greedy / disp_mll : 0,
                                 2),
                    std::to_string(gs.unplaced),
                    std::to_string(ms.unplaced)});
    }
    t1.print(std::cout);

    std::cout << "\n=== Ablation D2: Abacus on single-row designs; "
                 "rejection of multi-row designs ===\n";
    Table t2({"Design", "Algorithm", "Disp (sites)", "Runtime (s)",
              "Outcome"});
    {
        // Single-row-only design: Abacus's home turf.
        const GenProfile p = profile_for(0.6, cells, false);
        GenResult gen = generate_benchmark(p);
        SegmentGrid grid = SegmentGrid::build(gen.db);

        const AbacusStats as = abacus_legalize(gen.db, grid);
        const double disp_ab = displacement_stats(gen.db).avg_sites;
        t2.add_row({"single-row d=0.6", "Abacus",
                    format_fixed(disp_ab, 3), format_fixed(as.runtime_s, 3),
                    as.success ? "legal" : "FAILED"});

        reset_placement(gen.db, grid);
        LegalizerOptions mopts;
        const LegalizerStats ms = legalize_placement(gen.db, grid, mopts);
        t2.add_row({"single-row d=0.6", "MLL",
                    format_fixed(displacement_stats(gen.db).avg_sites, 3),
                    format_fixed(ms.runtime_s, 3),
                    ms.success ? "legal" : "FAILED"});
    }
    {
        // Mixed-height design: Abacus cannot handle it (paper 1).
        const GenProfile p = profile_for(0.6, cells, true);
        GenResult gen = generate_benchmark(p);
        SegmentGrid grid = SegmentGrid::build(gen.db);
        const AbacusStats as = abacus_legalize(gen.db, grid);
        t2.add_row({"multi-row d=0.6", "Abacus", "-",
                    format_fixed(as.runtime_s, 3),
                    as.rejected_multi_row ? "rejected (multi-row cells)"
                                          : "unexpected"});
        LegalizerOptions mopts;
        const LegalizerStats ms = legalize_placement(gen.db, grid, mopts);
        t2.add_row({"multi-row d=0.6", "MLL",
                    format_fixed(displacement_stats(gen.db).avg_sites, 3),
                    format_fixed(ms.runtime_s, 3),
                    ms.success ? "legal" : "FAILED"});
    }
    t2.print(std::cout);
    return 0;
}
