#pragma once
/// Shared harness utilities for the experiment benches: flag parsing,
/// design preparation, one-shot legalization runs with metric collection,
/// and a minimal JSON emitter for machine-readable benchmark trajectories
/// (`--json <path>`).

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "db/database.hpp"
#include "db/segment.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"

namespace mrlg::bench {

/// Minimal flag parser: --key value / --flag.
class Args {
public:
    Args(int argc, char** argv);
    double get_double(const std::string& key, double def) const;
    int get_int(const std::string& key, int def) const;
    bool has_flag(const std::string& key) const;
    std::string get_string(const std::string& key,
                           const std::string& def) const;

private:
    std::vector<std::string> argv_;
};

/// Metrics of one legalization run (one cell of a Table 1 row).
struct RunMetrics {
    bool success = false;
    double disp_avg_sites = 0.0;
    double disp_max_sites = 0.0;
    double dhpwl_pct = 0.0;
    double runtime_s = 0.0;
    double gp_hpwl_m = 0.0;
    std::size_t direct = 0;
    std::size_t mll = 0;
    std::size_t points_evaluated = 0;  ///< Insertion points scored by MLL.
};

/// Minimal JSON value tree (objects keep insertion order). Enough for the
/// benchmark trajectory files; not a general-purpose parser (write-only).
class Json {
public:
    Json() = default;  // null
    static Json object();
    static Json array();
    static Json num(double v);
    static Json num(std::int64_t v);
    static Json num(std::size_t v);
    static Json str(std::string v);
    static Json boolean(bool v);

    /// Object member (created/overwritten in insertion order).
    Json& set(const std::string& key, Json v);
    /// Array element.
    Json& push(Json v);

    void write(std::ostream& os, int indent = 0) const;

private:
    enum class Type { kNull, kBool, kNumber, kInteger, kString, kObject,
                      kArray };
    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::int64_t integer_ = 0;
    std::string string_;
    std::vector<std::pair<std::string, Json>> members_;
    std::vector<Json> elements_;
};

/// Writes `root` to `path` (pretty-printed, trailing newline). Returns
/// false (and logs) when the file cannot be opened.
bool write_json_file(const std::string& path, const Json& root);

/// Unplaces every movable cell so the same design can be legalized again.
void reset_placement(Database& db, SegmentGrid& grid);

/// Legalizes `db` (already generated, cells unplaced) and gathers metrics.
/// Asserts legality of the result (with the run's rail setting).
RunMetrics run_legalization(Database& db, SegmentGrid& grid,
                            const LegalizerOptions& opts);

}  // namespace mrlg::bench
