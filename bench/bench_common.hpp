#pragma once
/// Shared harness utilities for the experiment benches: flag parsing,
/// design preparation, one-shot legalization runs with metric collection,
/// and a minimal JSON emitter for machine-readable benchmark trajectories
/// (`--json <path>`).

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "db/database.hpp"
#include "db/segment.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "obs/json.hpp"

namespace mrlg::bench {

/// Minimal flag parser: --key value / --flag.
class Args {
public:
    Args(int argc, char** argv);
    double get_double(const std::string& key, double def) const;
    int get_int(const std::string& key, int def) const;
    bool has_flag(const std::string& key) const;
    std::string get_string(const std::string& key,
                           const std::string& def) const;

private:
    std::vector<std::string> argv_;
};

/// Metrics of one legalization run (one cell of a Table 1 row).
struct RunMetrics {
    bool success = false;
    double disp_avg_sites = 0.0;
    double disp_max_sites = 0.0;
    double dhpwl_pct = 0.0;
    double runtime_s = 0.0;
    double gp_hpwl_m = 0.0;
    std::size_t direct = 0;
    std::size_t mll = 0;
    std::size_t points_evaluated = 0;  ///< Insertion points scored by MLL.
    std::size_t waves = 0;             ///< Plan/commit waves (0 = serial).
    std::size_t conflict_requeues = 0; ///< Footprint-conflict deferrals.
};

/// The JSON emitter lives in the product library now (obs/json.hpp) so
/// run reports and benchmark trajectories share one serialization; these
/// aliases keep the bench call sites unchanged.
using Json = ::mrlg::obs::Json;
using ::mrlg::obs::write_json_file;

/// Unplaces every movable cell so the same design can be legalized again.
void reset_placement(Database& db, SegmentGrid& grid);

/// Legalizes `db` (already generated, cells unplaced) and gathers metrics.
/// Asserts legality of the result (with the run's rail setting).
RunMetrics run_legalization(Database& db, SegmentGrid& grid,
                            const LegalizerOptions& opts);

}  // namespace mrlg::bench
