/// bench_window_sweep — Ablation B (DESIGN.md): the paper fixes the MLL
/// window at Rx=30, Ry=5 (§3). Sweeps both radii on one mid-density
/// profile and reports displacement / runtime, showing the
/// quality-vs-speed knee that motivates the paper's choice.
///
/// Flags: --scale F (default 0.02), --profile N (index into Table 1)

#include <iostream>

#include "bench_common.hpp"
#include "io/profiles.hpp"
#include "util/logging.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace mrlg;
using namespace mrlg::bench;

int main(int argc, char** argv) {
    Args args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const double scale = args.get_double("--scale", 0.02);
    const std::size_t pick =
        static_cast<std::size_t>(args.get_int("--profile", 4));  // fft_1

    const auto all = table1_benchmarks(scale);
    const GenProfile& profile = all[pick].profile;
    std::cout << "=== Ablation B: MLL window size sweep on "
              << profile.name << " (paper default Rx=30, Ry=5) ===\n";

    Table t({"Rx", "Ry", "Disp (sites)", "dHPWL %", "Runtime (s)",
             "Success"});
    struct Cfg {
        SiteCoord rx;
        SiteCoord ry;
    };
    const std::vector<Cfg> cfgs = {{5, 5},  {10, 5}, {20, 5}, {30, 5},
                                   {50, 5}, {30, 1}, {30, 2}, {30, 3},
                                   {30, 8}, {10, 2}, {50, 8}};
    GenResult gen = generate_benchmark(profile);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    for (const Cfg& cfg : cfgs) {
        reset_placement(gen.db, grid);
        LegalizerOptions opts;
        opts.mll.rx = cfg.rx;
        opts.mll.ry = cfg.ry;
        const RunMetrics m = run_legalization(gen.db, grid, opts);
        t.add_row({std::to_string(cfg.rx), std::to_string(cfg.ry),
                   format_fixed(m.disp_avg_sites, 3),
                   format_fixed(m.dhpwl_pct, 2),
                   format_fixed(m.runtime_s, 3), m.success ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "\nSmaller windows are faster but find fewer insertion "
                 "points (worse displacement / failures at density); "
                 "larger windows cost runtime for little quality.\n";
    return 0;
}
