/// bench_ablation_eval — Ablation A (DESIGN.md): the paper's §5.2 claim
/// that the O(h_t) neighbour-approximated insertion-point evaluation is
/// "accurate enough to choose the near-optimal place". Runs the full
/// legalizer with approximate vs exact evaluation on a subset of Table 1
/// profiles and reports displacement gap and runtime ratio.
///
/// Flags: --scale F (default 0.02), --seed N

#include <iostream>

#include "bench_common.hpp"
#include "io/profiles.hpp"
#include "util/logging.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace mrlg;
using namespace mrlg::bench;

int main(int argc, char** argv) {
    Args args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const double scale = args.get_double("--scale", 0.02);
    const int seed_offset = args.get_int("--seed", 0);

    // A spread of densities: low, mid, high.
    const std::vector<std::size_t> picks = {14, 3, 8, 4, 0};

    std::cout << "=== Ablation A: approximate vs exact insertion-point "
                 "evaluation (paper 5.2) ===\n";
    Table t({"Benchmark", "Density", "Disp approx", "Disp exact",
             "Disp gap %", "RT approx(s)", "RT exact(s)", "RT ratio"});
    double sum_gap = 0;
    double sum_ratio = 0;
    const auto all = table1_benchmarks(scale);
    for (const std::size_t idx : picks) {
        GenProfile profile = all[idx].profile;
        profile.seed += static_cast<std::uint64_t>(seed_offset);
        GenResult gen = generate_benchmark(profile);
        SegmentGrid grid = SegmentGrid::build(gen.db);

        LegalizerOptions approx;
        const RunMetrics ma = run_legalization(gen.db, grid, approx);

        reset_placement(gen.db, grid);
        LegalizerOptions exact = approx;
        exact.mll.exact_evaluation = true;
        const RunMetrics me = run_legalization(gen.db, grid, exact);

        const double gap =
            me.disp_avg_sites > 0
                ? (ma.disp_avg_sites / me.disp_avg_sites - 1.0) * 100.0
                : 0.0;
        const double ratio =
            ma.runtime_s > 0 ? me.runtime_s / ma.runtime_s : 0.0;
        sum_gap += gap;
        sum_ratio += ratio;
        t.add_row({profile.name, format_fixed(gen.db.density(), 2),
                   format_fixed(ma.disp_avg_sites, 3),
                   format_fixed(me.disp_avg_sites, 3),
                   format_fixed(gap, 1), format_fixed(ma.runtime_s, 2),
                   format_fixed(me.runtime_s, 2),
                   format_fixed(ratio, 1)});
    }
    t.add_row({"Avg.", "", "", "",
               format_fixed(sum_gap / static_cast<double>(picks.size()), 1),
               "", "",
               format_fixed(sum_ratio / static_cast<double>(picks.size()),
                            1)});
    t.print(std::cout);
    std::cout << "\nPaper claim: approximation loses ~13% displacement vs "
                 "the exact/ILP optimum while being far faster.\n";
    return 0;
}
