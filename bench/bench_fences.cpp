/// bench_fences — extension experiment: the ISPD2015 suite the paper
/// evaluates on is "Benchmarks with Fence Regions and Routing Blockages";
/// this bench sweeps the fraction of fence-constrained cells and measures
/// the legalization cost of the fence walls (members can only shuffle
/// within their region, so local slack shrinks).
///
/// Flags: --cells N (default 4000), --density F (default 0.6)

#include <iostream>

#include "bench_common.hpp"
#include "util/logging.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace mrlg;
using namespace mrlg::bench;

int main(int argc, char** argv) {
    Args args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const std::size_t cells =
        static_cast<std::size_t>(args.get_int("--cells", 4000));
    const double density = args.get_double("--density", 0.6);

    std::cout << "=== Extension: fence regions at density "
              << format_fixed(density, 2) << " ===\n";
    Table t({"Fenced cells %", "Disp (sites)", "Disp fenced", "Disp core",
             "dHPWL %", "RT (s)", "Legal"});
    for (const double frac : {0.0, 0.1, 0.2, 0.35, 0.5}) {
        GenProfile p;
        p.name = "fences";
        p.num_single = cells * 9 / 10;
        p.num_double = cells / 10;
        p.density = density;
        p.fence_cell_frac = frac;
        p.seed = 31;
        GenResult gen = generate_benchmark(p);
        SegmentGrid grid = SegmentGrid::build(gen.db);
        LegalizerOptions opts;
        const RunMetrics m = run_legalization(gen.db, grid, opts);

        // Per-population displacement.
        const double sw = gen.db.floorplan().site_w_um();
        const double sh = gen.db.floorplan().site_h_um();
        double disp_f = 0;
        double disp_c = 0;
        std::size_t n_f = 0;
        std::size_t n_c = 0;
        for (const Cell& c : gen.db.cells()) {
            if (!c.placed()) {
                continue;
            }
            const double d =
                (std::abs(c.x() - c.gp_x()) * sw +
                 std::abs(c.y() - c.gp_y()) * sh) /
                sw;
            if (c.region() != 0) {
                disp_f += d;
                ++n_f;
            } else {
                disp_c += d;
                ++n_c;
            }
        }
        t.add_row({format_fixed(frac * 100, 0),
                   format_fixed(m.disp_avg_sites, 3),
                   n_f > 0 ? format_fixed(disp_f / static_cast<double>(n_f),
                                          3)
                           : "-",
                   n_c > 0 ? format_fixed(disp_c / static_cast<double>(n_c),
                                          3)
                           : "-",
                   format_fixed(m.dhpwl_pct, 2),
                   format_fixed(m.runtime_s, 3), m.success ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "\nFence members pay a displacement premium (their local "
                 "regions end at the fence wall); the core is unaffected.\n";
    return 0;
}
