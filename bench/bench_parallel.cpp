/// bench_parallel — thread-scaling sweep of the parallel layers.
/// For each synthesized design and evaluation mode, legalizes the same
/// global placement at 1/2/4/8 threads under both parallelization series:
///
///   intra_window    — Pipeline::kSerial: one cell at a time, parallelism
///                     only inside each MLL's insertion-point scan;
///   region_parallel — the plan/commit pipeline over disjoint local-region
///                     footprints (legalize/pipeline.hpp, the default).
///
/// Every run is verified bit-identical to the serial baseline of its
/// series AND to the other series (the pipeline's serial-equivalence
/// contract), then emitted into a machine-readable JSON trajectory
/// together with the real machine configuration — speedup numbers are
/// meaningless without the hardware_threads that produced them.
///
/// Flags:
///   --json PATH    output file (default BENCH_parallel.json)
///   --threads CSV  thread counts to sweep (default "1,2,4,8")
///   --scale F      cell-count scale factor (default 1.0)
///   --seed N       generator seed offset (default 0)
///   --approx-only / --exact-only   restrict the evaluation modes
///   --large-only   run only the largest design
///   --trace PATH   install a wall-clock timeline and write the last
///                  run's Chrome trace-event / Perfetto JSON to PATH
///                  (off by default so the no-timeline overhead claim
///                  stays measurable here)

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "io/profiles.hpp"
#include "obs/timeline.hpp"
#include "util/logging.hpp"
#include "util/str.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace mrlg;
using namespace mrlg::bench;

namespace {

std::vector<int> parse_threads(const std::string& csv) {
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos < csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
        const int v = std::atoi(tok.c_str());
        if (v > 0) {
            out.push_back(v);
        }
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    if (out.empty()) {
        out = {1, 2, 4, 8};
    }
    return out;
}

std::vector<std::pair<SiteCoord, SiteCoord>> snapshot(const Database& db) {
    std::vector<std::pair<SiteCoord, SiteCoord>> pos;
    pos.reserve(db.num_cells());
    for (const Cell& c : db.cells()) {
        pos.emplace_back(c.x(), c.y());
    }
    return pos;
}

struct Series {
    const char* name;
    LegalizerOptions::Pipeline pipeline;
};

}  // namespace

int main(int argc, char** argv) {
    Args args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const std::string json_path =
        args.get_string("--json", "BENCH_parallel.json");
    const std::vector<int> threads =
        parse_threads(args.get_string("--threads", "1,2,4,8"));
    const double scale = args.get_double("--scale", 1.0);
    const int seed_offset = args.get_int("--seed", 0);

    std::vector<std::string> designs = parallel_profile_names();
    if (args.has_flag("--large-only")) {
        designs = {designs.back()};
    }
    const std::string trace_path = args.get_string("--trace", "");
    // The timeline is installed ONLY with --trace: default bench runs
    // measure the true zero-observer cost of the instrumented hot paths.
    std::unique_ptr<obs::Timeline> timeline;
    std::unique_ptr<obs::ScopedTimeline> timeline_guard;
    std::vector<bool> modes;  // true = exact evaluation
    if (!args.has_flag("--exact-only")) {
        modes.push_back(false);
    }
    if (!args.has_flag("--approx-only")) {
        modes.push_back(true);
    }
    const Series series[] = {
        {"intra_window", LegalizerOptions::Pipeline::kSerial},
        {"region_parallel", LegalizerOptions::Pipeline::kRegionParallel},
    };

    Json root = Json::object();
    root.set("bench", Json::str("bench_parallel"));
    root.set("scale", Json::num(scale));
    root.set("seed_offset", Json::num(static_cast<std::int64_t>(seed_offset)));
    Json runs = Json::array();

    for (const std::string& design_name : designs) {
        GenProfile profile;
        if (!parallel_profile(design_name, scale, seed_offset, profile)) {
            std::cerr << "unknown parallel design profile: " << design_name
                      << "\n";
            return 1;
        }
        GenResult gen = generate_benchmark(profile);
        Database& db = gen.db;
        SegmentGrid grid = SegmentGrid::build(db);
        const std::size_t num_cells = db.num_cells();

        for (const bool exact : modes) {
            // Reference placement: the serial path at 1 thread. Every run
            // of every series must reproduce it bit for bit.
            std::vector<std::pair<SiteCoord, SiteCoord>> reference_pos;
            for (const Series& s : series) {
                double baseline_time = 0.0;
                for (const int t : threads) {
                    reset_placement(db, grid);
                    if (!trace_path.empty()) {
                        // Fresh timeline per run; the last run's events are
                        // what ends up in the trace file.
                        timeline_guard.reset();
                        timeline = std::make_unique<obs::Timeline>();
                        timeline_guard =
                            std::make_unique<obs::ScopedTimeline>(*timeline);
                    }
                    LegalizerOptions opts;
                    opts.seed = profile.seed;
                    opts.num_threads = t;
                    opts.pipeline = s.pipeline;
                    opts.mll.exact_evaluation = exact;
                    const RunMetrics m = run_legalization(db, grid, opts);
                    const auto pos = snapshot(db);
                    if (reference_pos.empty()) {
                        reference_pos = pos;
                    }
                    if (t == threads.front()) {
                        baseline_time = m.runtime_s;
                    }
                    const bool identical = pos == reference_pos;
                    const double speedup =
                        m.runtime_s > 0.0 ? baseline_time / m.runtime_s
                                          : 0.0;
                    std::cerr << design_name << " ["
                              << (exact ? "exact" : "approx") << "/"
                              << s.name << "] t=" << t << ": "
                              << format_fixed(m.runtime_s, 3) << "s"
                              << " speedup=" << format_fixed(speedup, 2)
                              << (identical ? "" : "  MISMATCH") << "\n";

                    // Sanity guard: no run can legitimately beat linear
                    // scaling. A speedup above the thread count (plus
                    // timer-noise slack) means the baseline, the clock, or
                    // the recorded environment is lying — exactly the class
                    // of bug behind a hardware_threads:1 machine reporting
                    // 7 pool workers.
                    if (speedup > static_cast<double>(t) + 0.25) {
                        std::cerr << "FATAL: speedup_vs_serial "
                                  << format_fixed(speedup, 2)
                                  << " exceeds the thread count " << t
                                  << " (series=" << s.name
                                  << " design=" << design_name
                                  << ") - baseline or clock is broken\n";
                        return 1;
                    }

                    const ThreadPoolConfig tp_now = ThreadPool::config();
                    Json run = Json::object();
                    run.set("design", Json::str(design_name));
                    run.set("cells", Json::num(num_cells));
                    run.set("mode", Json::str(exact ? "exact" : "approx"));
                    run.set("series", Json::str(s.name));
                    run.set("threads",
                            Json::num(static_cast<std::int64_t>(t)));
                    run.set("threads_effective",
                            Json::num(static_cast<std::int64_t>(std::min(
                                t, tp_now.pool_workers + 1))));
                    run.set("legalize_s", Json::num(m.runtime_s));
                    run.set("success", Json::boolean(m.success));
                    run.set("points_evaluated",
                            Json::num(m.points_evaluated));
                    run.set("waves", Json::num(m.waves));
                    run.set("conflict_requeues",
                            Json::num(m.conflict_requeues));
                    run.set("disp_avg_sites", Json::num(m.disp_avg_sites));
                    run.set("dhpwl_pct", Json::num(m.dhpwl_pct));
                    run.set("speedup_vs_serial", Json::num(speedup));
                    run.set("identical_to_serial",
                            Json::boolean(identical));
                    runs.push(std::move(run));
                    if (!identical) {
                        std::cerr << "FATAL: run diverged from the serial "
                                     "placement (design=" << design_name
                                  << " series=" << s.name
                                  << " threads=" << t << ")\n";
                        return 1;
                    }
                }
            }
        }
    }
    root.set("runs", std::move(runs));

    // Machine configuration, captured AFTER the sweep so the global pool
    // has been instantiated and pool_workers_active reflects the helper
    // threads that really ran (not -1, and never a made-up count that
    // contradicts hardware_threads).
    const ThreadPoolConfig tp = ThreadPool::config();
    Json env = Json::object();
    env.set("hardware_threads", Json::num(tp.hardware_threads));
    env.set("default_threads", Json::num(tp.default_threads));
    env.set("pool_workers", Json::num(tp.pool_workers));
    env.set("pool_workers_active", Json::num(tp.pool_workers_active));
    env.set("mrlg_threads_env", Json::boolean(tp.env_override));
    root.set("environment", std::move(env));

    if (!write_json_file(json_path, root)) {
        return 1;
    }
    std::cerr << "wrote " << json_path << "\n";
    if (!trace_path.empty() && timeline != nullptr) {
        if (!obs::write_chrome_trace(trace_path, *timeline,
                                     "bench_parallel")) {
            return 1;
        }
        std::cerr << "wrote " << trace_path << "\n";
    }
    return 0;
}
