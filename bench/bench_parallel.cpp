/// bench_parallel — thread-scaling sweep of the parallel evaluation layer.
/// For each synthesized design and evaluation mode, legalizes the same
/// global placement at 1/2/4/8 threads, verifies the final placements are
/// bit-identical to the serial run (the determinism contract of
/// thread_pool.hpp), and emits a machine-readable JSON trajectory.
///
/// Flags:
///   --json PATH    output file (default BENCH_parallel.json)
///   --threads CSV  thread counts to sweep (default "1,2,4,8")
///   --scale F      cell-count scale factor (default 1.0)
///   --seed N       generator seed offset (default 0)
///   --approx-only / --exact-only   restrict the evaluation modes
///   --large-only   run only the largest design

#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "util/logging.hpp"
#include "util/str.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace mrlg;
using namespace mrlg::bench;

namespace {

struct DesignSpec {
    std::string name;
    std::size_t num_single;
    std::size_t num_double;
    double density;
};

std::vector<int> parse_threads(const std::string& csv) {
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos < csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
        const int v = std::atoi(tok.c_str());
        if (v > 0) {
            out.push_back(v);
        }
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    if (out.empty()) {
        out = {1, 2, 4, 8};
    }
    return out;
}

std::vector<std::pair<SiteCoord, SiteCoord>> snapshot(const Database& db) {
    std::vector<std::pair<SiteCoord, SiteCoord>> pos;
    pos.reserve(db.num_cells());
    for (const Cell& c : db.cells()) {
        pos.emplace_back(c.x(), c.y());
    }
    return pos;
}

}  // namespace

int main(int argc, char** argv) {
    Args args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const std::string json_path =
        args.get_string("--json", "BENCH_parallel.json");
    const std::vector<int> threads =
        parse_threads(args.get_string("--threads", "1,2,4,8"));
    const double scale = args.get_double("--scale", 1.0);
    const int seed_offset = args.get_int("--seed", 0);

    std::vector<DesignSpec> designs{
        {"parallel_s", 2000, 200, 0.70},
        {"parallel_m", 8000, 800, 0.72},
        {"parallel_l", 24000, 2400, 0.75},
    };
    if (args.has_flag("--large-only")) {
        designs = {designs.back()};
    }
    std::vector<bool> modes;  // true = exact evaluation
    if (!args.has_flag("--exact-only")) {
        modes.push_back(false);
    }
    if (!args.has_flag("--approx-only")) {
        modes.push_back(true);
    }

    Json root = Json::object();
    root.set("bench", Json::str("bench_parallel"));
    root.set("hardware_threads",
             Json::num(static_cast<std::int64_t>(
                 std::thread::hardware_concurrency())));
    root.set("scale", Json::num(scale));
    root.set("seed_offset", Json::num(static_cast<std::int64_t>(seed_offset)));
    Json runs = Json::array();

    for (const DesignSpec& spec : designs) {
        GenProfile profile;
        profile.name = spec.name;
        profile.num_single =
            static_cast<std::size_t>(static_cast<double>(spec.num_single) *
                                     scale);
        profile.num_double =
            static_cast<std::size_t>(static_cast<double>(spec.num_double) *
                                     scale);
        profile.density = spec.density;
        profile.seed = 11 + static_cast<std::uint64_t>(seed_offset);
        GenResult gen = generate_benchmark(profile);
        Database& db = gen.db;
        SegmentGrid grid = SegmentGrid::build(db);
        const std::size_t num_cells = db.num_cells();

        for (const bool exact : modes) {
            std::vector<std::pair<SiteCoord, SiteCoord>> serial_pos;
            double serial_time = 0.0;
            for (const int t : threads) {
                reset_placement(db, grid);
                LegalizerOptions opts;
                opts.seed = profile.seed;
                opts.num_threads = t;
                opts.mll.exact_evaluation = exact;
                const RunMetrics m = run_legalization(db, grid, opts);
                const auto pos = snapshot(db);
                bool identical = true;
                if (t == threads.front()) {
                    serial_pos = pos;
                    serial_time = m.runtime_s;
                } else {
                    identical = pos == serial_pos;
                }
                const double speedup =
                    m.runtime_s > 0.0 ? serial_time / m.runtime_s : 0.0;
                std::cerr << spec.name << " ["
                          << (exact ? "exact" : "approx") << "] t=" << t
                          << ": " << format_fixed(m.runtime_s, 3) << "s"
                          << " speedup=" << format_fixed(speedup, 2)
                          << (identical ? "" : "  MISMATCH") << "\n";

                Json run = Json::object();
                run.set("design", Json::str(spec.name));
                run.set("cells", Json::num(num_cells));
                run.set("mode", Json::str(exact ? "exact" : "approx"));
                run.set("threads", Json::num(static_cast<std::int64_t>(t)));
                run.set("legalize_s", Json::num(m.runtime_s));
                run.set("success", Json::boolean(m.success));
                run.set("points_evaluated", Json::num(m.points_evaluated));
                run.set("disp_avg_sites", Json::num(m.disp_avg_sites));
                run.set("dhpwl_pct", Json::num(m.dhpwl_pct));
                run.set("speedup_vs_serial", Json::num(speedup));
                run.set("identical_to_serial", Json::boolean(identical));
                runs.push(std::move(run));
                if (!identical) {
                    std::cerr << "FATAL: thread count changed the placement"
                              << "\n";
                    return 1;
                }
            }
        }
    }
    root.set("runs", std::move(runs));
    if (!write_json_file(json_path, root)) {
        return 1;
    }
    std::cerr << "wrote " << json_path << "\n";
    return 0;
}
