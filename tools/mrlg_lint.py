#!/usr/bin/env python3
"""Unified static-check CLI for the mrlg sources.

    tools/mrlg_lint.py effects      [paths...] [options]
    tools/mrlg_lint.py determinism  [paths...] [options]
    tools/mrlg_lint.py all          [paths...] [options]

effects      whole-program phase-effect analysis: proves every function
             reachable from the MRLG_EFFECT_READONLY roots and the
             plan-stage dispatch free of grid mutation, const_cast, and
             unsynchronized global state (mrlg_lint/effects.py).
determinism  line-level ambient-nondeterminism lint
             (mrlg_lint/determinism.py).
all          both, sharing the reporter and exit code — the single CI
             entry (tools/ci.sh).

Options:
  --root DIR            repo root for relative paths / default paths
                        (default: parent of this script's directory)
  --baseline FILE       tolerated-findings file for the effects rules
                        (default: tools/effects_baseline.txt under root;
                        pass --baseline '' to disable)
  --update-baseline     rewrite the baseline with the current findings
  --compile-commands F  compilation database for the libclang frontend
                        (optional; the built-in scanner needs none)

Default paths: src/ under --root.
Exit: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from mrlg_lint import determinism, effects, framework  # noqa: E402


def main(argv):
    parser = argparse.ArgumentParser(
        prog="mrlg_lint.py",
        description="Static checks for the mrlg sources.",
    )
    parser.add_argument("mode", choices=["effects", "determinism", "all"])
    parser.add_argument("paths", nargs="*", help="files or dirs (default: src/)")
    parser.add_argument("--root", default=None)
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--compile-commands", default=None)
    try:
        args = parser.parse_args(argv[1:])
    except SystemExit as e:
        return 2 if e.code not in (0, None) else 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    paths = args.paths or [os.path.join(root, "src")]
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = os.path.join(root, "tools", "effects_baseline.txt")

    files, err = framework.collect_files(paths)
    if err:
        print(f"mrlg_lint: {err}", file=sys.stderr)
        return 2

    rel = lambda p: os.path.relpath(p, root) if os.path.isabs(p) else p  # noqa: E731

    findings = []
    frontend = None
    if args.mode in ("effects", "all"):
        eff_findings, frontend, _n = effects.analyze(
            files, root=root, compile_commands=args.compile_commands
        )
        findings.extend(eff_findings)
    if args.mode in ("determinism", "all"):
        det = determinism.analyze(files)
        for fi in det:
            fi.path = rel(fi.path)
        findings.extend(det)

    if args.update_baseline and args.mode in ("effects", "all"):
        eff_only = [fi for fi in findings if fi.rule not in DETERMINISM_RULES]
        framework.write_baseline(
            baseline_path,
            eff_only,
            header=(
                "Tolerated effects findings (tools/mrlg_lint.py effects).\n"
                "One finding key per line; regenerate with "
                "--update-baseline.\nKeep this empty for src/legalize: the "
                "plan phase must stay provably read-only."
            ),
        )
        print(f"mrlg_lint: baseline written to {rel(baseline_path)}")

    baseline = framework.load_baseline(baseline_path if baseline_path else None)
    label = f"mrlg_lint[{args.mode}"
    if frontend:
        label += f", {frontend}"
    label += "]"
    return framework.report(
        findings, baseline, label, len(files), sys.stdout, sys.stderr
    )


DETERMINISM_RULES = {
    "unordered-iter",
    "naked-assert",
    "stdout-io",
    "wall-clock",
    "ambient-rng",
    "plan-order",
    "io-error",
}


if __name__ == "__main__":
    sys.exit(main(sys.argv))
