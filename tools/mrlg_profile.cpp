/// mrlg_profile — thread-sweep scheduling profiler for the region-parallel
/// pipeline. Legalizes one synthetic design of the parallel_* family at a
/// sweep of thread counts with a wall-clock Timeline installed, derives
/// the per-wave scheduling metrics (pool utilization, straggler share,
/// commit-serialization share — obs/timeline.hpp), and emits a bottleneck
/// report that *names the top scaling limiter*: the machine itself, the
/// serial commit phase, the serial partition phase, task imbalance, or
/// waves too thin to feed the pool.
///
/// Usage:
///   mrlg_profile [options]
///     --design CSV    parallel_s | parallel_m | parallel_l, comma
///                     separated for a multi-design baseline (default
///                     parallel_l)
///     --threads CSV   thread counts to sweep      (default "1,2,4,8")
///     --mode M        approx | exact | both       (default approx)
///     --scale F       cell-count scale factor     (default 1.0)
///     --seed N        generator seed offset       (default 0)
///     --json PATH     write the JSON bottleneck trajectory to PATH
///     --trace PATH    write the LAST run's Chrome trace-event / Perfetto
///                     JSON timeline to PATH
///     --quiet         suppress the per-run progress lines
/// With MRLG_PERF_COUNTERS set, each run also samples the hardware
/// counters (instructions/cycles/cache misses via perf_event_open,
/// obs/memres.hpp) around legalization and attaches them to the run's
/// JSON entry — silently skipped when the kernel refuses the counters.
/// Exit code: 0 on success, 1 when any run fails to legalize, 2 on usage
/// errors.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "db/segment.hpp"
#include "io/benchmark_gen.hpp"
#include "io/profiles.hpp"
#include "legalize/legalizer.hpp"
#include "obs/memres.hpp"
#include "obs/timeline.hpp"
#include "util/str.hpp"
#include "util/thread_pool.hpp"

using namespace mrlg;
using obs::Json;

namespace {

const char* find_arg(int argc, char** argv, const char* key) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], key) == 0) {
            return argv[i + 1];
        }
    }
    return nullptr;
}

bool has_flag(int argc, char** argv, const char* key) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], key) == 0) {
            return true;
        }
    }
    return false;
}

int usage() {
    std::cerr << "usage: mrlg_profile [--design parallel_s|parallel_m|"
                 "parallel_l]\n"
                 "       [--threads CSV] [--mode approx|exact|both]\n"
                 "       [--scale F] [--seed N] [--json PATH]\n"
                 "       [--trace PATH] [--quiet]\n";
    return 2;
}

std::vector<int> parse_threads(const char* csv) {
    std::vector<int> out;
    const std::string s = csv != nullptr ? csv : "1,2,4,8";
    std::size_t pos = 0;
    while (pos < s.size()) {
        const std::size_t comma = s.find(',', pos);
        const int v = std::atoi(s.substr(pos, comma - pos).c_str());
        if (v > 0) {
            out.push_back(v);
        }
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    if (out.empty()) {
        out = {1, 2, 4, 8};
    }
    return out;
}

void unplace_all(Database& db, SegmentGrid& grid) {
    for (const CellId c : db.movable_cells()) {
        if (db.cell(c).placed()) {
            grid.remove(db, c);
        }
    }
}

std::vector<std::string> parse_designs(const char* csv) {
    std::vector<std::string> out;
    const std::string s = csv != nullptr ? csv : "parallel_l";
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string tok = s.substr(pos, comma - pos);
        if (!tok.empty()) {
            out.push_back(tok);
        }
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    return out;
}

/// One run of the sweep: its wall time and derived schedule metrics.
struct ProfiledRun {
    bool exact = false;
    int threads = 0;
    double wall_s = 0.0;
    double speedup = 0.0;
    obs::ScheduleReport sched;
    obs::PerfCounters::Values perf;  ///< valid only under MRLG_PERF_COUNTERS.
};

/// One candidate scaling limiter with a comparable score in [0, 1].
struct Limiter {
    const char* name;
    double score;
    std::string detail;
};

/// Ranks the candidate limiters for the run at the sweep's highest thread
/// count. Scores are shares of run time (or of the requested parallelism)
/// claimed by each serial/imbalance mechanism, so they are directly
/// comparable; the largest one is the knob to turn next.
std::vector<Limiter> rank_limiters(const ProfiledRun& run,
                                   const ThreadPoolConfig& tp) {
    std::vector<Limiter> out;
    const obs::ScheduleReport& s = run.sched;
    const int want = run.threads;

    if (tp.hardware_threads < want) {
        out.push_back(
            {"hardware_threads",
             1.0 - static_cast<double>(tp.hardware_threads) /
                       static_cast<double>(want),
             "machine has " + std::to_string(tp.hardware_threads) +
                 " hardware thread(s) for a " + std::to_string(want) +
                 "-thread sweep; extra workers only timeslice"});
    }
    out.push_back({"commit_serialization", s.commit_serial_share,
                   format_fixed(100.0 * s.commit_serial_share, 1) +
                       "% of wave wall time is the serial commit phase"});
    out.push_back({"partition_serialization", s.partition_share,
                   format_fixed(100.0 * s.partition_share, 1) +
                       "% of wave wall time is the serial region "
                       "partition"});
    out.push_back({"straggler_imbalance", s.straggler_share,
                   format_fixed(100.0 * s.straggler_share, 1) +
                       "% of plan wall time is the longest task "
                       "overhanging a balanced schedule"});
    const double avg_tasks =
        s.waves_total > 0 ? static_cast<double>(s.tasks_total) /
                                static_cast<double>(s.waves_total)
                          : 0.0;
    const double thin =
        std::max(0.0, 1.0 - avg_tasks / (2.0 * static_cast<double>(want)));
    out.push_back({"thin_waves", thin,
                   "average of " + format_fixed(avg_tasks, 1) +
                       " plan tasks per wave against a " +
                       std::to_string(want) + "-thread budget"});

    std::stable_sort(out.begin(), out.end(),
                     [](const Limiter& a, const Limiter& b) {
                         return a.score > b.score;
                     });
    return out;
}

Json limiters_json(const std::vector<Limiter>& ranked) {
    Json arr = Json::array();
    for (const Limiter& l : ranked) {
        Json j = Json::object();
        j.set("limiter", Json::str(l.name));
        j.set("score", Json::num(l.score));
        j.set("detail", Json::str(l.detail));
        arr.push(std::move(j));
    }
    return arr;
}

}  // namespace

int main(int argc, char** argv) {
    const std::vector<std::string> designs =
        parse_designs(find_arg(argc, argv, "--design"));
    const std::vector<int> threads =
        parse_threads(find_arg(argc, argv, "--threads"));
    const char* mode_arg = find_arg(argc, argv, "--mode");
    const std::string mode = mode_arg != nullptr ? mode_arg : "approx";
    double scale = 1.0;
    if (const char* s = find_arg(argc, argv, "--scale")) {
        scale = std::atof(s);
    }
    int seed_offset = 0;
    if (const char* s = find_arg(argc, argv, "--seed")) {
        seed_offset = std::atoi(s);
    }
    const bool quiet = has_flag(argc, argv, "--quiet");

    std::vector<bool> modes;
    if (mode == "approx") {
        modes = {false};
    } else if (mode == "exact") {
        modes = {true};
    } else if (mode == "both") {
        modes = {false, true};
    } else {
        return usage();
    }

    // The last run's timeline outlives the sweeps for --trace; the
    // overall top limiter (by score, across designs and modes) is the
    // report's headline.
    std::unique_ptr<obs::Timeline> timeline;
    Limiter top{"", -1.0, ""};
    Json profiles = Json::array();

    for (const std::string& design : designs) {
        GenProfile profile;
        if (!parallel_profile(design, scale, seed_offset, profile)) {
            std::cerr << "unknown design '" << design
                      << "' (expected one of:";
            for (const std::string& n : parallel_profile_names()) {
                std::cerr << " " << n;
            }
            std::cerr << ")\n";
            return usage();
        }

        GenResult gen = generate_benchmark(profile);
        Database& db = gen.db;
        SegmentGrid grid = SegmentGrid::build(db);
        if (!quiet) {
            std::cerr << "mrlg_profile " << design << ": " << db.num_cells()
                      << " cells, scale " << format_fixed(scale, 2) << "\n";
        }

        std::vector<ProfiledRun> runs;
        for (const bool exact : modes) {
            double baseline_s = 0.0;
            for (const int t : threads) {
                unplace_all(db, grid);
                timeline = std::make_unique<obs::Timeline>();
                obs::ScopedTimeline install(*timeline);

                LegalizerOptions opts;
                opts.seed = profile.seed;
                opts.num_threads = t;
                opts.pipeline =
                    LegalizerOptions::Pipeline::kRegionParallel;
                opts.mll.exact_evaluation = exact;
                obs::PerfCounters counters;
                counters.start();
                const LegalizerStats stats =
                    legalize_placement(db, grid, opts);
                counters.stop();
                if (!stats.success) {
                    std::cerr << "FATAL: legalization failed (design="
                              << design << " threads=" << t << ")\n";
                    return 1;
                }

                ProfiledRun run;
                run.exact = exact;
                run.threads = t;
                run.wall_s = stats.runtime_s;
                if (t == threads.front()) {
                    baseline_s = stats.runtime_s;
                }
                run.speedup = stats.runtime_s > 0.0
                                  ? baseline_s / stats.runtime_s
                                  : 0.0;
                run.sched = obs::derive_schedule_report(*timeline, t);
                run.perf = counters.read();
                if (!quiet) {
                    std::cerr
                        << "  [" << (exact ? "exact" : "approx")
                        << "] t=" << t << ": "
                        << format_fixed(run.wall_s, 3) << "s"
                        << " speedup=" << format_fixed(run.speedup, 2)
                        << " util="
                        << format_fixed(run.sched.pool_utilization, 2)
                        << " straggler="
                        << format_fixed(run.sched.straggler_share, 2)
                        << " commit="
                        << format_fixed(run.sched.commit_serial_share, 2);
                    if (run.perf.valid && run.perf.cycles > 0) {
                        std::cerr
                            << " ipc="
                            << format_fixed(
                                   static_cast<double>(
                                       run.perf.instructions) /
                                       static_cast<double>(run.perf.cycles),
                                   2);
                    }
                    std::cerr << "\n";
                }
                runs.push_back(std::move(run));
            }
        }

        Json dj = Json::object();
        dj.set("design", Json::str(design));
        dj.set("cells", Json::num(db.num_cells()));
        Json runs_json = Json::array();
        for (const ProfiledRun& r : runs) {
            Json j = Json::object();
            j.set("mode", Json::str(r.exact ? "exact" : "approx"));
            j.set("threads",
                  Json::num(static_cast<std::int64_t>(r.threads)));
            j.set("wall_s", Json::num(r.wall_s));
            j.set("speedup_vs_t1", Json::num(r.speedup));
            j.set("schedule", obs::schedule_report_json(r.sched));
            if (r.perf.valid) {
                j.set("perf", obs::perf_counters_json(r.perf));
            }
            runs_json.push(std::move(j));
        }
        dj.set("runs", std::move(runs_json));

        // Bottleneck report: ranked limiters of the highest-thread run
        // of each mode.
        const ThreadPoolConfig tp_now = ThreadPool::config();
        Json bottlenecks = Json::array();
        for (const bool exact : modes) {
            const ProfiledRun* last = nullptr;
            for (const ProfiledRun& r : runs) {
                if (r.exact == exact &&
                    (last == nullptr || r.threads > last->threads)) {
                    last = &r;
                }
            }
            if (last == nullptr) {
                continue;
            }
            const std::vector<Limiter> ranked =
                rank_limiters(*last, tp_now);
            Json j = Json::object();
            j.set("mode", Json::str(exact ? "exact" : "approx"));
            j.set("threads",
                  Json::num(static_cast<std::int64_t>(last->threads)));
            j.set("top_limiter", Json::str(ranked.front().name));
            j.set("ranked", limiters_json(ranked));
            bottlenecks.push(std::move(j));
            if (ranked.front().score > top.score) {
                top = ranked.front();
            }
            std::cout << "bottleneck report [" << design << ", "
                      << (exact ? "exact" : "approx")
                      << ", t=" << last->threads << "]:\n";
            int rank = 1;
            for (const Limiter& l : ranked) {
                std::cout << "  " << rank++ << ". " << l.name << " ("
                          << format_fixed(l.score, 2) << "): " << l.detail
                          << "\n";
            }
        }
        dj.set("bottlenecks", std::move(bottlenecks));
        profiles.push(std::move(dj));
    }

    // Captured after the sweeps: pool_workers_active is real by now.
    const ThreadPoolConfig tp = ThreadPool::config();

    Json root = Json::object();
    root.set("bench", Json::str("mrlg_profile"));
    root.set("scale", Json::num(scale));
    Json env = Json::object();
    env.set("hardware_threads", Json::num(tp.hardware_threads));
    env.set("default_threads", Json::num(tp.default_threads));
    env.set("pool_workers", Json::num(tp.pool_workers));
    env.set("pool_workers_active", Json::num(tp.pool_workers_active));
    env.set("mrlg_threads_env", Json::boolean(tp.env_override));
    root.set("environment", std::move(env));
    root.set("profiles", std::move(profiles));
    if (top.score >= 0.0) {
        root.set("top_limiter", Json::str(top.name));
        std::cout << "top scaling limiter: " << top.name << " - "
                  << top.detail << "\n";
    }

    if (const char* path = find_arg(argc, argv, "--json")) {
        if (!obs::write_json_file(path, root)) {
            return 2;
        }
        std::cerr << "wrote " << path << "\n";
    }
    if (const char* path = find_arg(argc, argv, "--trace")) {
        if (timeline == nullptr ||
            !obs::write_chrome_trace(path, *timeline,
                                     "mrlg_profile " + designs.back())) {
            return 2;
        }
        std::cerr << "wrote " << path << "\n";
    }
    return 0;
}
