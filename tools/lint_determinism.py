#!/usr/bin/env python3
"""Determinism lint for the mrlg library sources. Thin wrapper over

    tools/mrlg_lint.py determinism [paths...]

The rules (unordered-iter, naked-assert, stdout-io, wall-clock,
ambient-rng, plan-order) and the suppression syntax
(`// mrlg-lint: allow(<rule>) <reason>`) are documented in
mrlg_lint/determinism.py; the findings/reporting machinery is shared
with the phase-effect analyzer (mrlg_lint/framework.py). The original
CLI is preserved: positional paths, default src/, exit 0/1/2.
"""

import importlib.util
import os
import sys


def _load_cli():
    # tools/mrlg_lint.py shadows the mrlg_lint package by name, so load
    # it by path instead of by import.
    here = os.path.dirname(os.path.abspath(__file__))
    spec = importlib.util.spec_from_file_location(
        "mrlg_lint_cli", os.path.join(here, "mrlg_lint.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


if __name__ == "__main__":
    cli = _load_cli()
    sys.exit(cli.main([sys.argv[0], "determinism"] + sys.argv[1:]))
