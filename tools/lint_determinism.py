#!/usr/bin/env python3
"""Determinism lint for the mrlg library sources.

PR 1 made the parallel evaluation layer bit-identical at any thread count;
that contract dies silently if library code starts consuming ambient
nondeterminism. This lint rejects the known leak paths in src/:

  unordered-iter   Iterating an unordered container (range-for or explicit
                   begin()). Iteration order is unspecified, so any fold
                   into a result, message, or container ordered by visit
                   sequence is nondeterministic. Use a vector, sort first,
                   or iterate an index range.
  naked-assert     Plain assert() instead of MRLG_ASSERT/MRLG_DCHECK.
                   assert aborts the process and vanishes under NDEBUG;
                   the MRLG macros throw AssertionError and have defined
                   release behaviour (util/assert.hpp).
  stdout-io        std::cout / printf / puts in library code. stdout
                   belongs to the embedding application; libraries log
                   through MRLG_LOG (stderr) or return strings.
  wall-clock       Reading clocks outside src/util/. Timing flows through
                   util/timer.hpp and must never influence results.
  ambient-rng      rand()/srand()/std::random_device/std::mt19937 outside
                   src/util/. All randomness comes from util/rng.hpp with
                   an explicit seed so runs reproduce.
  plan-order       Any unordered container in the order-critical files of
                   the region-parallel plan/commit pipeline (see
                   ORDER_CRITICAL_FILES). The pipeline's serial-equivalence
                   proof hangs on walking queues, batches, and ledger
                   claims in deterministic order; an unordered container
                   anywhere in those files is one refactor away from being
                   iterated. Stricter than unordered-iter on purpose: use
                   std::map / std::set / sorted vectors there.

Suppress a deliberate use with a one-line reason on the same line or the
line above:   // mrlg-lint: allow(<rule>) <reason>

Usage: tools/lint_determinism.py [paths...]   (default: src/)
Exit:  0 clean, 1 findings, 2 usage error.
"""

import os
import re
import sys

ALLOW_RE = re.compile(r"mrlg-lint:\s*allow\(([a-z-]+)\)")

# Rules that apply everywhere under the linted roots.
GLOBAL_RULES = [
    (
        "naked-assert",
        re.compile(r"(?<![_\w])assert\s*\("),
        "use MRLG_ASSERT/MRLG_DCHECK (util/assert.hpp) instead of assert()",
    ),
    (
        "stdout-io",
        re.compile(r"std::cout|(?<![\w_])printf\s*\(|(?<![\w_])puts\s*\("),
        "library code must not write to stdout; use MRLG_LOG or return data",
    ),
]

# Rules from which src/util/ (the sanctioned wrappers) is exempt.
NON_UTIL_RULES = [
    (
        "wall-clock",
        re.compile(
            r"steady_clock|system_clock|high_resolution_clock"
            r"|(?<![\w_])std::time\s*\(|gettimeofday|(?<![\w_])clock\s*\(\)"
        ),
        "read time through util/timer.hpp only",
    ),
    (
        "ambient-rng",
        re.compile(
            r"(?<![\w_])rand\s*\(|(?<![\w_])srand\s*\(|random_device"
            r"|mt19937|default_random_engine|random_shuffle"
        ),
        "use util/rng.hpp (explicit seed) for all randomness",
    ),
]

# Files whose iteration order is load-bearing for the plan/commit
# pipeline's serial-equivalence argument (legalize/pipeline.hpp). Unordered
# containers are rejected here entirely, not just their iteration.
ORDER_CRITICAL_FILES = (
    os.path.join("legalize", "pipeline.hpp"),
    os.path.join("legalize", "pipeline.cpp"),
    os.path.join("legalize", "legalizer.cpp"),
)

UNORDERED_USE_RE = re.compile(r"unordered_(?:map|set|multimap|multiset)")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>[&\s]*(\w+)\s*[;={(,)]"
)
RANGE_FOR_RE = re.compile(r"for\s*\(.*?:\s*&?\s*\*?\s*([\w.\->:]+)\s*\)")
DIRECT_UNORDERED_ITER_RE = re.compile(
    r"for\s*\(.*:\s*[^)]*unordered_(?:map|set|multimap|multiset)"
)


def strip_noise(line, in_block_comment):
    """Removes string literals and comments so rules match code only.

    Returns (code, comment_text, still_in_block_comment). Comment text is
    kept separately because suppressions live there.
    """
    code = []
    comment = []
    i = 0
    n = len(line)
    state_block = in_block_comment
    while i < n:
        if state_block:
            end = line.find("*/", i)
            if end < 0:
                comment.append(line[i:])
                i = n
            else:
                comment.append(line[i:end])
                i = end + 2
                state_block = False
            continue
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            comment.append(line[i + 2 :])
            i = n
        elif ch == "/" and i + 1 < n and line[i + 1] == "*":
            state_block = True
            i += 2
        elif ch == '"' or ch == "'":
            quote = ch
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                elif line[i] == quote:
                    i += 1
                    break
                else:
                    i += 1
            code.append(quote + quote)  # keep token boundaries
        else:
            code.append(ch)
            i += 1
    return "".join(code), "".join(comment), state_block


def lint_file(path, findings):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        findings.append((path, 0, "io-error", str(e)))
        return

    in_util = os.sep + "util" + os.sep in path
    rules = list(GLOBAL_RULES) + ([] if in_util else NON_UTIL_RULES)
    order_critical = path.endswith(ORDER_CRITICAL_FILES)

    # Pass 1: names declared as unordered containers in this file
    # (including references bound to one, the common aliasing pattern).
    unordered_names = set()
    in_block = False
    stripped = []
    allows = []  # per line: set of allowed rule names (this or prev line)
    for line in raw_lines:
        code, comment, in_block = strip_noise(line, in_block)
        stripped.append(code)
        allows.append(set(ALLOW_RE.findall(comment)))
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))

    def allowed(idx, rule):
        if rule in allows[idx]:
            return True
        return idx > 0 and rule in allows[idx - 1]

    for idx, code in enumerate(stripped):
        lineno = idx + 1
        if (
            order_critical
            and UNORDERED_USE_RE.search(code)
            and not allowed(idx, "plan-order")
        ):
            findings.append(
                (
                    path,
                    lineno,
                    "plan-order",
                    "order-critical pipeline file: unordered containers "
                    "are banned here (serial-equivalence depends on "
                    "deterministic iteration)",
                )
            )
        for rule, pattern, advice in rules:
            if pattern.search(code) and not allowed(idx, rule):
                if rule == "naked-assert" and "static_assert" in code:
                    # static_assert is compile-time and always on.
                    if not re.search(r"(?<!static_)assert\s*\(", code):
                        continue
                findings.append((path, lineno, rule, advice))
        if allowed(idx, "unordered-iter"):
            continue
        m = RANGE_FOR_RE.search(code)
        hit = DIRECT_UNORDERED_ITER_RE.search(code) is not None
        if not hit and m is not None:
            # Range-for over a variable declared unordered in this file.
            base = m.group(1).split(".")[0].split("->")[0]
            hit = base in unordered_names
        if hit:
            findings.append(
                (
                    path,
                    lineno,
                    "unordered-iter",
                    "iteration order of unordered containers is "
                    "unspecified; sort or use an ordered container",
                )
            )


def main(argv):
    roots = argv[1:] or ["src"]
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        if not os.path.isdir(root):
            print(f"lint_determinism: no such path: {root}", file=sys.stderr)
            return 2
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                    files.append(os.path.join(dirpath, name))
    files.sort()

    findings = []
    for path in files:
        lint_file(path, findings)

    for path, lineno, rule, advice in findings:
        print(f"{path}:{lineno}: {rule}: {advice}")
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
