#!/usr/bin/env bash
# mrlg CI pipeline: one entry point for every check this repo ships.
#
#   1. Release build + full ctest suite
#   2. Static checks (tools/mrlg_lint.py all): the phase-effect analyzer
#      proving the mll_plan closure read-only, plus the determinism lint
#      — one stage, one baseline, one exit code
#   2b. Thread-safety annotations: the analyze-effects preset compiles
#      every TU with clang -Wthread-safety -Werror so the GridWriteCap
#      capability chain is machine-checked; SKIPped when clang++ is not
#      installed (the Python analyzer in stage 2 still runs)
#   3. clang-tidy over all translation units (MRLG_ANALYZE build)
#   4. cppcheck over src/ and tools/
#   5. ASan+UBSan build + full ctest suite (DCHECKs on)
#   6. TSan build running the `parallel` label tier under MRLG_THREADS=4
#      (the thread-count determinism properties, incl. the region-parallel
#      plan/commit pipeline and the lock-free Timeline lanes, with real
#      worker threads racing)
#   7. End-to-end invariant audit: mrlg_audit --gen --legalize at
#      MRLG_VALIDATE=full must report zero audit failures
#   8. Differential fuzz smoke: mrlg_fuzz with fixed seeds (~10 s); all
#      oracle batteries must agree. MRLG_FUZZ_ITERS scales it up.
#   8b. Scheduling profile: mrlg_profile thread-sweep on the small
#      parallel design; its bottleneck report must name a top limiter and
#      its Perfetto trace must pass tools/validate_trace.py.
#   9. Coverage: gcovr over a --coverage build running the fast unit
#      tier (ctest -L unit); SKIPped when gcovr is not installed.
#
# The test suite is partitioned by ctest labels
# (unit/e2e/fuzz/golden/parallel); `ctest --test-dir build -L unit` is the
# fast inner-loop tier.
#
# Stages whose tools are not installed are SKIPped with a reason, not
# failed: the container bakes in gcc/cmake/python3 but clang-tidy and
# cppcheck are optional. Any stage that runs and fails fails the script.
#
# Usage: tools/ci.sh [--fast]
#   --fast   skip the sanitizer rebuilds (stages 5 and 6); everything
#            else runs.

set -u

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
    --fast) FAST=1 ;;
    *)
        echo "usage: tools/ci.sh [--fast]" >&2
        exit 2
        ;;
    esac
done

JOBS=$(nproc 2>/dev/null || echo 4)
FAILURES=0
SKIPS=0

banner() { printf '\n=== %s ===\n' "$1"; }

run_stage() {
    # run_stage <name> <cmd...>: runs the command, records pass/fail.
    local name=$1
    shift
    banner "$name"
    if "$@"; then
        echo "--- $name: OK"
    else
        echo "--- $name: FAIL" >&2
        FAILURES=$((FAILURES + 1))
    fi
}

skip_stage() {
    banner "$1"
    echo "--- $1: SKIP ($2)"
    SKIPS=$((SKIPS + 1))
}

# ---------------------------------------------------------------- stage 1
build_and_test() {
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null &&
        cmake --build build -j "$JOBS" &&
        ctest --test-dir build --output-on-failure -j "$JOBS"
}
run_stage "build + ctest (Release)" build_and_test

# ---------------------------------------------------------------- stage 2
# Phase-effect analysis + determinism lint through the unified CLI.
# Proves (with the built-in frontend; libclang when available) that the
# transitive closure of mll_plan and the plan-stage dispatch never
# mutates the grid, launders const, or touches unsynchronized globals.
run_stage "static checks (effects + determinism)" \
    python3 tools/mrlg_lint.py all src

# --------------------------------------------------------------- stage 2b
if command -v clang++ >/dev/null 2>&1; then
    effects_build_stage() {
        cmake --preset analyze-effects >/dev/null &&
            cmake --build --preset analyze-effects -j "$JOBS"
    }
    run_stage "thread-safety build (analyze-effects preset)" \
        effects_build_stage
else
    skip_stage "thread-safety build (analyze-effects preset)" \
        "clang++ not installed"
fi

# ---------------------------------------------------------------- stage 3
if command -v clang-tidy >/dev/null 2>&1; then
    tidy_stage() {
        cmake -B build-analyze -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
            -DMRLG_ANALYZE=ON -DMRLG_WERROR=ON >/dev/null &&
            cmake --build build-analyze -j "$JOBS"
    }
    run_stage "clang-tidy (MRLG_ANALYZE build)" tidy_stage
else
    skip_stage "clang-tidy (MRLG_ANALYZE build)" "clang-tidy not installed"
fi

# ---------------------------------------------------------------- stage 4
if command -v cppcheck >/dev/null 2>&1; then
    cppcheck_stage() {
        cppcheck --enable=warning,performance,portability \
            --inline-suppr --error-exitcode=1 \
            --suppress=missingIncludeSystem \
            -I src src tools
    }
    run_stage "cppcheck" cppcheck_stage
else
    skip_stage "cppcheck" "cppcheck not installed"
fi

# ---------------------------------------------------------------- stage 5
if [ "$FAST" = 1 ]; then
    skip_stage "ASan+UBSan ctest" "--fast"
else
    asan_stage() {
        cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
            -DMRLG_SANITIZE=address,undefined -DMRLG_DCHECKS=ON \
            >/dev/null &&
            cmake --build build-asan -j "$JOBS" &&
            ctest --test-dir build-asan --output-on-failure -j "$JOBS"
    }
    run_stage "ASan+UBSan ctest" asan_stage
fi

# ---------------------------------------------------------------- stage 6
if [ "$FAST" = 1 ]; then
    skip_stage "TSan ctest -L parallel" "--fast"
else
    tsan_stage() {
        # The parallel tier's determinism properties compare multi-thread
        # runs against serial ones; under TSan with MRLG_THREADS=4 they
        # double as data-race detectors for the plan/commit pipeline's
        # shared-grid reads.
        cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
            -DMRLG_SANITIZE=thread -DMRLG_DCHECKS=ON >/dev/null &&
            cmake --build build-tsan -j "$JOBS" &&
            MRLG_THREADS=4 ctest --test-dir build-tsan -L parallel \
                --output-on-failure -j "$JOBS"
    }
    run_stage "TSan ctest -L parallel" tsan_stage
fi

# ---------------------------------------------------------------- stage 7
audit_stage() {
    MRLG_VALIDATE=full ./build/tools/mrlg_audit --gen --singles 800 \
        --doubles 120 --seed 7 --legalize --level full
}
run_stage "end-to-end invariant audit (MRLG_VALIDATE=full)" audit_stage

# ---------------------------------------------------------------- stage 8
fuzz_smoke_stage() {
    # Two fixed seeds, small budget (~10 s): the point is catching oracle
    # divergences on every CI run, not deep exploration. Opt into longer
    # campaigns with MRLG_FUZZ_ITERS (iterations per scenario).
    ./build/tools/mrlg_fuzz --seed 1 --iters "${MRLG_FUZZ_ITERS:-4}" &&
        ./build/tools/mrlg_fuzz --seed 20260806 \
            --iters "${MRLG_FUZZ_ITERS:-4}"
}
run_stage "fuzz-smoke (differential oracles)" fuzz_smoke_stage

# --------------------------------------------------------------- stage 8b
profile_stage() {
    # Thread-sweep scheduling profile of the region-parallel pipeline on
    # the small design. Fails when legalization fails, when the
    # bottleneck report cannot name a top limiter, or when the emitted
    # Perfetto JSON stops matching the Chrome trace-event schema.
    ./build/tools/mrlg_profile --design parallel_s --threads 1,2,4 \
        --scale 0.5 --json build/profile_ci.json \
        --trace build/profile_ci_trace.json &&
        grep -q '"top_limiter"' build/profile_ci.json &&
        python3 tools/validate_trace.py build/profile_ci_trace.json
}
run_stage "scheduling profile + Perfetto trace validation" profile_stage

# ---------------------------------------------------------------- stage 9
if command -v gcovr >/dev/null 2>&1; then
    coverage_stage() {
        # Instrumented build of the unit tier only: coverage is a trend
        # signal, so the fast tests suffice and keep the stage cheap.
        cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug \
            -DCMAKE_CXX_FLAGS=--coverage >/dev/null &&
            cmake --build build-cov -j "$JOBS" &&
            ctest --test-dir build-cov -L unit -j "$JOBS" \
                --output-on-failure &&
            gcovr --root . --filter src/ --print-summary \
                -o build-cov/coverage.txt build-cov
    }
    run_stage "coverage (gcovr, unit tier)" coverage_stage
else
    skip_stage "coverage (gcovr, unit tier)" "gcovr not installed"
fi

# ------------------------------------------------------------------ report
banner "summary"
echo "failures: $FAILURES   skipped: $SKIPS"
if [ "$FAILURES" -gt 0 ]; then
    exit 1
fi
exit 0
