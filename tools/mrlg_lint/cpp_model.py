"""Self-contained C++ source model for the effects analyzer.

This is the fallback frontend: a heuristic scanner that extracts function
definitions and an over-approximate name-based call graph from stripped
source text, with no compiler installed. When libclang is available the
effects analyzer prefers it (effects.py builds the same structures from
the AST); the two frontends feed identical rule code.

Scope of the heuristics — and why they are safe here:

* Function extraction tracks namespace/class scope by brace matching on
  comment- and literal-stripped text. Lambdas are folded into their
  enclosing function, which is conservative for effect analysis (any
  call inside a lambda is attributed to the function that owns it).
* Calls are matched by name. Method calls require an explicit receiver
  (``x.f(`` / ``x->f(``), so ``std::remove(`` never aliases
  ``grid.remove(``. Name-based resolution over-approximates: when two
  functions share a simple name the walker descends into both, so a
  mutator can only be missed by not being *named*, not by overload
  ambiguity. The known ambiguous accessor names (Database::cell etc.,
  const + non-const pairs) are resolved through receiver constness
  tracked from parameter and local reference declarations.
"""

import re
from dataclasses import dataclass, field

from . import framework

# Types whose mutation the pipeline cares about (the shared placement
# state). A non-const reference/pointer to one of these is "mutable
# access to the grid".
TRACKED_TYPES = ("Database", "SegmentGrid", "Cell", "Floorplan", "Net", "Segment")

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "new", "delete", "case", "do", "else", "alignof", "decltype", "assert",
    "defined", "not", "and", "or",
}

SCOPE_NAMESPACE = "namespace"
SCOPE_CLASS = "class"
SCOPE_FUNCTION = "function"
SCOPE_OTHER = "other"

NAME_BEFORE_PAREN_RE = re.compile(r"([A-Za-z_~][\w:]*|operator\S*)\s*$")
CLASS_HEAD_RE = re.compile(r"\b(?:class|struct)\b")
CLASS_NAME_RE = re.compile(r"\b(?:class|struct)\b(?:\s+MRLG_\w+\s*(?:\([^)]*\))?)*\s+([A-Za-z_]\w*)")
NAMESPACE_RE = re.compile(r"\bnamespace\b\s*([A-Za-z_]\w*)?\s*$")
PARAM_RE = re.compile(
    r"(const\s+)?(?:mrlg::)?(" + "|".join(TRACKED_TYPES) + r")\s*([&*])\s*(\w+)"
)
LOCAL_REF_RE = re.compile(
    r"(const\s+)?(?:mrlg::)?(" + "|".join(TRACKED_TYPES) + r")\s*&\s*(\w+)\s*="
)
CALL_RE = re.compile(r"(?:(\.|->)\s*)?([A-Za-z_]\w*)\s*\(")


@dataclass
class Function:
    name: str            # simple name
    qualified: str       # Namespace::Class::name when known
    cls: str             # enclosing class name or ""
    path: str
    line: int            # 1-based line of the opening brace
    head: str            # signature text before the body
    body: str            # stripped body text, braces included
    is_const_method: bool = False
    # Tracked-type receivers visible in this function: name -> is_const.
    receivers: dict = field(default_factory=dict)

    def key(self):
        return f"{self.path}:{self.qualified}"


def _classify_head(head):
    """What kind of scope does the `{` opening after `head` introduce?"""
    h = head.strip()
    if not h:
        return SCOPE_OTHER, ""
    if NAMESPACE_RE.search(h.split("{")[-1]) or re.search(
        r"\bnamespace\b(\s+[A-Za-z_]\w*)?\s*$", h
    ):
        m = re.search(r"\bnamespace\b\s*([A-Za-z_]\w*)?\s*$", h)
        return SCOPE_NAMESPACE, (m.group(1) or "<anon>") if m else "<anon>"
    # enum class Foo { ... } is not a scope we care about.
    if re.search(r"\benum\b", h):
        return SCOPE_OTHER, ""
    if CLASS_HEAD_RE.search(h):
        # Distinguish a class *definition* head from a function returning
        # a class type: a definition head has no parameter list after the
        # class name (base clauses contain ':' but no top-level parens
        # except attribute macros, already part of the head).
        m = CLASS_NAME_RE.search(h)
        if m and not re.search(r"\)\s*(const\s*)?(noexcept\s*)?$", h):
            return SCOPE_CLASS, m.group(1)
    # Function definition: last top-level construct is `(...)` possibly
    # followed by qualifiers / attribute macros / ctor init list.
    name, params, ok = _match_function_head(h)
    if ok:
        return SCOPE_FUNCTION, (name, params, h)
    return SCOPE_OTHER, ""


def _top_level_paren_groups(text):
    """Yields (start, end) index pairs of top-level (...) groups."""
    depth = 0
    start = -1
    groups = []
    for i, ch in enumerate(text):
        if ch == "(":
            if depth == 0:
                start = i
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and start >= 0:
                groups.append((start, i))
                start = -1
    return groups


def _match_function_head(h):
    """Recognizes `h` as a function definition head.

    Returns (simple_name, param_text, True) or ("", "", False).
    """
    if re.search(r"(^|\s)(if|for|while|switch|catch)\s*\($", h):
        return "", "", False
    groups = _top_level_paren_groups(h)
    if not groups:
        return "", "", False
    # The parameter list is the first top-level group whose preceding
    # token is an identifier that is not a control keyword or macro-only
    # head; everything after may be qualifiers or a ctor init list.
    for start, end in groups:
        before = h[:start].rstrip()
        m = NAME_BEFORE_PAREN_RE.search(before)
        if not m:
            continue
        name = m.group(1)
        bare = name.split("::")[-1]
        if bare in KEYWORDS:
            return "", "", False
        # Assignment before the candidate group means this is an
        # initializer (`auto f = ...(...)`), not a definition head —
        # unless the '=' belongs to a default argument inside an earlier
        # group (impossible: we scan top level only).
        eq = before.rfind("=")
        if eq >= 0 and not re.search(r"[=!<>+\-*/|&^]=$|==$", before[: eq + 1]):
            return "", "", False
        # Macro-style all-caps heads (MRLG_OBS_PHASE(...) etc.) are not
        # definitions.
        if re.fullmatch(r"[A-Z0-9_]+", name):
            return "", "", False
        tail = h[end + 1 :].strip()
        if tail and not re.match(
            r"^(const|noexcept|override|final|:|->|MRLG_\w+|\(|,|\w|<|>|:{2})",
            tail,
        ):
            return "", "", False
        return name, h[start + 1 : end], True
    return "", "", False


def parse_file(sf):
    """Extracts Function objects from a framework.SourceFile."""
    text = sf.code_text()
    functions = []
    # Scope stack entries: (kind, name, brace_depth_at_entry)
    stack = []
    head_start = 0  # index where the current head text begins
    i = 0
    n = len(text)
    line = 1
    head_line = 1
    func_depth = None  # brace depth inside an active function body
    func_start = None
    func_info = None
    depth = 0

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch == "{":
            depth += 1
            if func_depth is not None:
                i += 1
                continue
            head = text[head_start:i]
            kind, info = _classify_head(head)
            if kind == SCOPE_FUNCTION:
                func_depth = depth
                func_start = i
                name, params, full_head = info
                func_info = (name, params, full_head, head_line)
            else:
                stack.append((kind, info if isinstance(info, str) else "", depth))
            head_start = i + 1
            head_line = line
            i += 1
            continue
        if ch == "}":
            depth -= 1
            if func_depth is not None and depth < func_depth:
                # Function body closed.
                name, params, full_head, fline = func_info
                body = text[func_start : i + 1]
                namespaces = [s[1] for s in stack if s[0] == SCOPE_NAMESPACE]
                classes = [s[1] for s in stack if s[0] == SCOPE_CLASS]
                cls = classes[-1] if classes else ""
                simple = name.split("::")[-1]
                if "::" in name:
                    cls = name.rsplit("::", 2)[-2]
                qual_parts = [p for p in namespaces if p != "<anon>"]
                if cls:
                    qual_parts.append(cls)
                qual_parts.append(simple)
                fn = Function(
                    name=simple,
                    qualified="::".join(qual_parts),
                    cls=cls,
                    path=sf.path,
                    line=fline,
                    head=full_head,
                    body=body,
                    is_const_method=bool(
                        re.search(r"\)\s*const(\s|$|\s*MRLG_)", full_head)
                    ),
                )
                for m in PARAM_RE.finditer(params):
                    is_const = bool(m.group(1)) or m.group(3) == "*" and False
                    fn.receivers[m.group(4)] = bool(m.group(1))
                for m in LOCAL_REF_RE.finditer(body):
                    fn.receivers.setdefault(m.group(3), bool(m.group(1)))
                functions.append(fn)
                func_depth = None
                func_info = None
            else:
                while stack and stack[-1][2] > depth:
                    stack.pop()
            head_start = i + 1
            head_line = line
            i += 1
            continue
        if ch == ";" and func_depth is None:
            head_start = i + 1
            head_line = line
            i += 1
            continue
        if ch == "#" and func_depth is None:
            # Preprocessor line: skip to end of line.
            j = text.find("\n", i)
            if j < 0:
                break
            head_start = j + 1
            i = j
            continue
        i += 1
    return functions


@dataclass
class Program:
    functions: list = field(default_factory=list)
    by_name: dict = field(default_factory=dict)  # simple name -> [Function]
    files: dict = field(default_factory=dict)  # path -> SourceFile

    @classmethod
    def load(cls, paths):
        prog = cls()
        for path in paths:
            sf = framework.SourceFile.load(path)
            prog.files[path] = sf
            for fn in parse_file(sf):
                prog.functions.append(fn)
                prog.by_name.setdefault(fn.name, []).append(fn)
        return prog

    def resolve(self, name):
        return self.by_name.get(name, [])


# Namespaces whose functions are never mrlg code (std::remove must not
# alias SegmentGrid::remove).
FOREIGN_NAMESPACES = {"std", "fs", "filesystem", "chrono", "detail"}


def extract_calls(body):
    """Yields (receiver_or_None, name, offset) for every call in body.

    Calls qualified into a foreign namespace (std:: etc.) are dropped.
    """
    for m in CALL_RE.finditer(body):
        name = m.group(2)
        if name in KEYWORDS or re.fullmatch(r"[A-Z0-9_]+", name):
            continue
        receiver = None
        if m.group(1):
            rm = re.search(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*$", body[: m.start(2)])
            receiver = rm.group(1) if rm else "<expr>"
        else:
            qm = re.search(r"([A-Za-z_]\w*)\s*::\s*$", body[: m.start(2)])
            if qm and qm.group(1) in FOREIGN_NAMESPACES:
                continue
        yield receiver, name, m.start()


def line_of_offset(body_base_line, body, offset):
    return body_base_line + body.count("\n", 0, offset)
