"""Phase-effect analysis: proves the plan phase of the region-parallel
pipeline read-only.

The write side of the phase contract is enforced by clang thread-safety
analysis (GridWriteCap in src/db/write_cap.hpp, built by the
`analyze-effects` preset). This module enforces the read side without a
compiler: every function reachable from a read-only root must not

  * call a grid mutator (any entry point annotated
    MRLG_REQUIRES(grid_write_cap()) in the sources, plus the built-in
    seed set),                                       -> plan-mutation
  * bind a non-const reference to a tracked type,    -> plan-mutation
  * use const_cast,                                  -> const-cast
  * write an unsanctioned namespace-scope global or
    keep mutable function-local static state
    (thread_local is fine),                          -> global-state

Roots are (a) every function marked MRLG_EFFECT_READONLY and (b) every
function dispatched by the plan-stage parallel_for in the legalizer
(extracted from the MRLG_OBS_PHASE("plan") block). The same block must
pause the ambient tracer before fanning out            -> tracer-pause
and every MRLG_EFFECT_READONLY marker must name a
function the analyzer can find                          -> marker-unknown

Frontends: libclang over compile_commands.json when importable (exact
AST), otherwise the built-in scanner (cpp_model.py). Both feed the same
rule code; this container has no clang, so the scanner is the tested
default.
"""

import os
import re

from . import cpp_model
from .framework import Finding

REQUIRES_MACRO = "MRLG_REQUIRES(grid_write_cap())"
READONLY_MARKER = "MRLG_EFFECT_READONLY"

# Mutators that exist even if annotation scanning finds nothing (the
# fixture tests run on files with no annotations at all).
SEED_FREE_MUTATORS = {"mll_commit", "mll_undo", "mll_place", "ripup_place"}
SEED_METHOD_MUTATORS = {
    "place", "remove", "set_x", "set_pos", "set_gp", "set_region",
    "set_orient", "unplace", "add_cell", "add_net", "add_pin",
    "freeze_fixed_cells", "mutable_cells_for_test", "mutable_segment",
}

# Accessor names with a const + non-const overload pair: a call is a
# mutation only when the receiver is provably non-const.
AMBIGUOUS_ACCESSORS = {"cell", "net", "floorplan"}

# Names too generic to match without an explicit receiver (std::remove,
# std::placeholders ... would alias them).
RECEIVER_ONLY = {"remove", "place", "x", "y"}

# Globals the plan phase may touch, and why. Reads of the ambient tracer
# pointer are safe because the plan dispatch pauses it (the tracer-pause
# rule checks that); writes remain forbidden.
SANCTIONED_GLOBAL_READS = {"g_current_tracer"}

# The synchronization substrate: files whose functions the closure walk
# treats as opaque read-only leaves. Their shared state is intentional
# (the pool singleton, its job queue) and is guarded by the annotated
# Mutex of util/mutex.hpp — clang -Wthread-safety checks that half of
# the proof (the `analyze-effects` preset); re-flagging the internals
# here would just duplicate findings the capability system owns.
SANCTIONED_SYNC_FILES = (
    os.path.join("util", "thread_pool.cpp"),
    os.path.join("util", "thread_pool.hpp"),
    os.path.join("util", "mutex.hpp"),
)

GLOBAL_WRITE_RE = re.compile(
    r"(\+\+|--)\s*(g_\w+)\b|"
    r"\b(g_\w+)\s*(\+\+|--|=(?!=)|\+=|-=|\*=|/=|\|=|&=)"
)
STATIC_LOCAL_RE = re.compile(
    r"\bstatic\s+(?!const\b|constexpr\b|thread_local\b|assert\b)"
)
CONST_CAST_RE = re.compile(r"\bconst_cast\b")
NONCONST_TRACKED_REF_RE = re.compile(
    r"(?<!const )(?<!const  )\b(?:mrlg::)?("
    + "|".join(cpp_model.TRACKED_TYPES)
    + r")\s*&\s*\w+\s*="
)


def _decl_name_before(text, pos):
    """Finds the declared name for a parameter list ending just before
    `pos` (walking back over whitespace/const and balanced parens)."""
    i = pos - 1
    while i >= 0 and text[i] in " \t\n":
        i -= 1
    if i >= 4 and text[i - 4 : i + 1] == "const":
        i -= 5
        while i >= 0 and text[i] in " \t\n":
            i -= 1
    if i < 0 or text[i] != ")":
        return None
    depth = 0
    while i >= 0:
        if text[i] == ")":
            depth += 1
        elif text[i] == "(":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    if i < 0:
        return None
    m = re.search(r"([A-Za-z_]\w*)\s*$", text[:i])
    return m.group(1) if m else None


def _decl_name_after(text, pos):
    """Finds the function name declared right after a marker at `pos`."""
    m = re.compile(r"([A-Za-z_][\w:]*)\s*\(").search(text, pos)
    if not m:
        return None
    return m.group(1).split("::")[-1]


def collect_annotated_mutators(prog):
    """Names declared with MRLG_REQUIRES(grid_write_cap()) anywhere."""
    names = set()
    for sf in prog.files.values():
        text = sf.code_text()
        start = 0
        while True:
            pos = text.find(REQUIRES_MACRO, start)
            if pos < 0:
                break
            name = _decl_name_before(text, pos)
            if name:
                names.add(name)
            start = pos + len(REQUIRES_MACRO)
    return names


def collect_readonly_markers(prog):
    """[(path, line, simple_name)] for every MRLG_EFFECT_READONLY use
    that precedes a declaration (the macro definition itself and comment
    mentions are filtered by requiring a following declaration)."""
    out = []
    for path, sf in sorted(prog.files.items()):
        text = sf.code_text()
        start = 0
        while True:
            pos = text.find(READONLY_MARKER, start)
            if pos < 0:
                break
            start = pos + len(READONLY_MARKER)
            # Skip the macro's own definition line.
            line_start = text.rfind("\n", 0, pos) + 1
            if text[line_start:pos].lstrip().startswith("#"):
                continue
            name = _decl_name_after(text, start)
            if name:
                line = text.count("\n", 0, pos) + 1
                out.append((path, line, name))
    return out


def collect_plan_dispatch(prog, findings):
    """Functions dispatched inside MRLG_OBS_PHASE("plan") fan-out blocks,
    plus the tracer-pause check on each such block."""
    roots = []
    for path, sf in sorted(prog.files.items()):
        text = sf.code_text()
        for m in re.finditer(r'MRLG_OBS_PHASE\(""\)|MRLG_OBS_PHASE\("plan"\)', text):
            # code_text() blanks string literals, so re-check the raw
            # source line for the actual phase name.
            line = text.count("\n", 0, m.start()) + 1
            raw = sf.raw_lines[line - 1]
            if '"plan"' not in raw:
                continue
            window = text[m.end() : m.end() + 4000]
            fan = window.find("parallel_for(")
            if fan < 0:
                continue
            if "TracerPause" not in window[:fan]:
                findings.append(
                    Finding(
                        rule="tracer-pause",
                        path=path,
                        line=line,
                        message=(
                            'plan-phase parallel_for without obs::TracerPause:'
                            " workers would race on the ambient tracer"
                        ),
                        key_hint="plan-dispatch",
                    )
                )
            # The dispatch region: parallel_for argument list (balanced).
            depth = 0
            end = fan
            for i in range(fan, len(window)):
                if window[i] == "(":
                    depth += 1
                elif window[i] == ")":
                    depth -= 1
                    if depth == 0:
                        end = i
                        break
            region = window[fan:end]
            for _recv, name, _off in cpp_model.extract_calls(region):
                if name == "parallel_for":
                    continue
                if prog.resolve(name):
                    roots.append((name, path, line))
    return roots


class EffectsAnalyzer:
    def __init__(self, prog, rel=lambda p: p):
        self.prog = prog
        self.rel = rel
        self.findings = []
        self.mutators = (
            collect_annotated_mutators(prog)
            | SEED_FREE_MUTATORS
            | SEED_METHOD_MUTATORS
        )
        self.proven_readonly = set()

    def run(self):
        markers = collect_readonly_markers(self.prog)
        roots = []  # (Function, chain, origin)
        seen_marker_names = set()
        for path, line, name in markers:
            fns = self.prog.resolve(name)
            if not fns:
                self.findings.append(
                    Finding(
                        rule="marker-unknown",
                        path=self.rel(path),
                        line=line,
                        message=(
                            f"MRLG_EFFECT_READONLY names '{name}' but no "
                            f"definition of it was found in the analyzed "
                            f"sources"
                        ),
                        key_hint=name,
                    )
                )
                continue
            if name in seen_marker_names:
                continue
            seen_marker_names.add(name)
            for fn in fns:
                roots.append((fn, [name], f"MRLG_EFFECT_READONLY {name}"))
        for name, path, line in collect_plan_dispatch(
            self.prog, self.findings
        ):
            for fn in self.prog.resolve(name):
                roots.append(
                    (fn, [f"plan-dispatch:{name}"], f"plan fan-out calls {name}")
                )
        # Rewrite finding paths from collect_plan_dispatch to relative.
        for fi in self.findings:
            fi.path = self.rel(fi.path)

        visited = set()
        for fn, chain, origin in roots:
            self._walk(fn, chain, origin, visited)
        return self.findings

    def _walk(self, fn, chain, origin, visited):
        if fn.key() in visited:
            return
        visited.add(fn.key())
        if fn.path.endswith(SANCTIONED_SYNC_FILES):
            self.proven_readonly.add(fn.name)
            return
        clean = True

        base_line = fn.line
        body = fn.body

        m = CONST_CAST_RE.search(body)
        if m:
            clean = False
            self._emit(
                "const-cast", fn, base_line, body, m.start(), chain, origin,
                "const_cast inside the read-only closure launders away the "
                "phase contract",
            )
        m = STATIC_LOCAL_RE.search(body)
        if m:
            clean = False
            self._emit(
                "global-state", fn, base_line, body, m.start(), chain, origin,
                "mutable function-local static in the read-only closure "
                "(concurrent plan calls would race); use thread_local or "
                "pass scratch explicitly",
            )
        for m in GLOBAL_WRITE_RE.finditer(body):
            g = m.group(2) or m.group(3)
            if g in SANCTIONED_GLOBAL_READS:
                # Writes to sanctioned globals are still writes.
                pass
            clean = False
            self._emit(
                "global-state", fn, base_line, body, m.start(), chain, origin,
                f"write to global '{g}' in the read-only closure",
            )
        m = NONCONST_TRACKED_REF_RE.search(body)
        if m:
            clean = False
            self._emit(
                "plan-mutation", fn, base_line, body, m.start(), chain,
                origin,
                f"binds a non-const {m.group(1)}& (mutable access to shared "
                f"placement state) in the read-only closure",
            )

        for recv, name, off in cpp_model.extract_calls(body):
            if self._is_mutator_call(fn, recv, name):
                clean = False
                self._emit(
                    "plan-mutation", fn, base_line, body, off, chain, origin,
                    f"calls grid mutator "
                    f"'{(recv + '.') if recv and recv != '<expr>' else ''}"
                    f"{name}' from the read-only closure",
                )
                continue
            for callee in self.prog.resolve(name):
                if callee.key() != fn.key():
                    self._walk(callee, chain + [name], origin, visited)
        if clean:
            self.proven_readonly.add(fn.name)

    def _is_mutator_call(self, fn, recv, name):
        if name not in self.mutators:
            return False
        if name in AMBIGUOUS_ACCESSORS:
            # Const + non-const overload pair: only a provably non-const
            # receiver selects the mutating one.
            return recv is not None and fn.receivers.get(recv) is False
        if recv is None and name in RECEIVER_ONLY:
            return False
        if recv is not None and recv != "<expr>":
            # Receiver of known-const tracked type calls the const API.
            if fn.receivers.get(recv) is True and name in RECEIVER_ONLY:
                return False
        return True

    def _emit(self, rule, fn, base_line, body, offset, chain, origin, what):
        line = cpp_model.line_of_offset(base_line, body, offset)
        via = " -> ".join(chain)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.rel(fn.path),
                line=line,
                message=f"{fn.qualified}: {what} [{origin}; via {via}]",
                key_hint=fn.qualified,
            )
        )


def _try_libclang(paths, compile_commands):
    """Builds a cpp_model.Program from libclang when available.

    Returns None when clang bindings or the compilation database are
    missing or fail — the caller falls back to the built-in scanner.
    """
    try:
        from clang import cindex  # noqa: F401
    except Exception:
        return None
    try:
        index = cindex.Index.create()
    except Exception:
        return None
    try:
        from . import framework

        prog = cpp_model.Program()
        args = ["-std=c++20", "-xc++"]
        db = None
        if compile_commands and os.path.exists(compile_commands):
            db = cindex.CompilationDatabase.fromDirectory(
                os.path.dirname(compile_commands)
            )
        for path in paths:
            if not path.endswith((".cpp", ".cc")):
                continue
            file_args = list(args)
            if db is not None:
                cmds = db.getCompileCommands(path)
                if cmds:
                    file_args = [a for a in list(cmds[0].arguments)[1:-1]]
            tu = index.parse(path, args=file_args)
            sf = framework.SourceFile.load(path)
            prog.files[path] = sf
            for cur in tu.cursor.walk_preorder():
                if cur.kind in (
                    cindex.CursorKind.FUNCTION_DECL,
                    cindex.CursorKind.CXX_METHOD,
                ) and cur.is_definition():
                    if not cur.location.file or cur.location.file.name != path:
                        continue
                    extent = cur.extent
                    body = "\n".join(
                        sf.code_lines[
                            extent.start.line - 1 : extent.end.line
                        ]
                    )
                    fn = cpp_model.Function(
                        name=cur.spelling,
                        qualified=cur.spelling,
                        cls=cur.semantic_parent.spelling
                        if cur.semantic_parent
                        else "",
                        path=path,
                        line=extent.start.line,
                        head="",
                        body=body,
                    )
                    for arg in cur.get_arguments():
                        t = arg.type.spelling
                        for tracked in cpp_model.TRACKED_TYPES:
                            if tracked in t and "&" in t:
                                fn.receivers[arg.spelling] = "const" in t
                    prog.functions.append(fn)
                    prog.by_name.setdefault(fn.name, []).append(fn)
        return prog if prog.functions else None
    except Exception:
        return None


def analyze(paths, root=None, compile_commands=None):
    """Runs the effects analysis over `paths`.

    Returns (findings, frontend_name, num_files).
    """
    root = root or os.getcwd()

    def rel(p):
        try:
            return os.path.relpath(p, root)
        except ValueError:
            return p

    prog = _try_libclang(paths, compile_commands)
    frontend = "libclang"
    if prog is None:
        prog = cpp_model.Program.load(paths)
        frontend = "builtin-scanner"
    analyzer = EffectsAnalyzer(prog, rel=rel)
    findings = analyzer.run()
    return findings, frontend, len(prog.files)
