"""mrlg_lint: static checks for the mrlg library sources.

Two rule families share one framework (findings, suppressions, baseline,
reporting — see framework.py):

  determinism  line-level lint rejecting ambient nondeterminism
               (tools/lint_determinism.py is a thin wrapper)
  effects      whole-program phase-effect analysis proving the plan
               phase of the region-parallel pipeline read-only
               (tools/analyze_effects.py is a thin wrapper)

Entry point: tools/mrlg_lint.py {effects|determinism|all}.
"""

__all__ = ["framework", "cpp_model", "effects", "determinism"]
