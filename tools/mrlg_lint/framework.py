"""Shared rule framework: findings, in-source suppressions, baselines,
and reporting. Both rule families (determinism, effects) produce Finding
objects; one reporter decides what is new, what is suppressed, and what
the exit code is, so CI has a single contract for every static check.

Suppression (line-level rules): a one-line reason on the finding's line
or the line above it::

    // mrlg-lint: allow(<rule>) <reason>

Baseline (whole-program rules, where there is no single line to carry a
comment): a checked-in file of finding keys, one per line, '#' comments
allowed. A finding whose key() appears in the baseline is reported as
tolerated but does not fail the run. Regenerate with --update-baseline.
"""

import os
import re
from dataclasses import dataclass, field

ALLOW_RE = re.compile(r"mrlg-lint:\s*allow\(([a-z-]+)\)")


@dataclass
class Finding:
    rule: str
    path: str  # repo-relative where possible
    line: int  # 1-based; 0 = whole-file / whole-program
    message: str
    # Stable identity for baselining: function names, not line numbers,
    # so unrelated edits do not churn the baseline. Defaults to
    # rule|path|line for line-level rules.
    key_hint: str = ""

    def key(self):
        if self.key_hint:
            return f"{self.rule}|{self.path}|{self.key_hint}"
        return f"{self.rule}|{self.path}|{self.line}"

    def render(self):
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: {self.rule}: {self.message}"


def strip_noise(line, in_block_comment):
    """Removes string literals and comments from one source line.

    Returns (code, comment_text, still_in_block_comment). Comment text
    is kept separately because suppressions live there.
    """
    code = []
    comment = []
    i = 0
    n = len(line)
    state_block = in_block_comment
    while i < n:
        if state_block:
            end = line.find("*/", i)
            if end < 0:
                comment.append(line[i:])
                i = n
            else:
                comment.append(line[i:end])
                i = end + 2
                state_block = False
            continue
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            comment.append(line[i + 2 :])
            i = n
        elif ch == "/" and i + 1 < n and line[i + 1] == "*":
            state_block = True
            i += 2
        elif ch == '"' or ch == "'":
            quote = ch
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                elif line[i] == quote:
                    i += 1
                    break
                else:
                    i += 1
            code.append(quote + quote)  # keep token boundaries
        else:
            code.append(ch)
            i += 1
    return "".join(code), "".join(comment), state_block


@dataclass
class SourceFile:
    """One file, pre-stripped for rule matching."""

    path: str
    raw_lines: list = field(default_factory=list)
    code_lines: list = field(default_factory=list)  # literals/comments gone
    allows: list = field(default_factory=list)  # per-line set of rule names

    @classmethod
    def load(cls, path):
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read().splitlines()
        sf = cls(path=path, raw_lines=raw)
        in_block = False
        for line in raw:
            code, comment, in_block = strip_noise(line, in_block)
            sf.code_lines.append(code)
            sf.allows.append(set(ALLOW_RE.findall(comment)))
        return sf

    def allowed(self, idx, rule):
        """True when line idx (0-based) carries an allow(rule) on it or
        the line above."""
        if rule in self.allows[idx]:
            return True
        return idx > 0 and rule in self.allows[idx - 1]

    def code_text(self):
        return "\n".join(self.code_lines)


def load_baseline(path):
    """Set of tolerated finding keys; missing file = empty baseline."""
    keys = set()
    if not path or not os.path.exists(path):
        return keys
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                keys.add(line)
    return keys


def write_baseline(path, findings, header=""):
    with open(path, "w", encoding="utf-8") as f:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        for key in sorted({fi.key() for fi in findings}):
            f.write(key + "\n")


def report(findings, baseline_keys, label, num_files, out, err):
    """Prints findings and returns the process exit code (0/1).

    Baselined findings are listed (prefixed "tolerated") but do not fail;
    stale baseline entries are ignored silently so deleting code never
    breaks the check.
    """
    fresh = []
    tolerated = []
    for fi in sorted(findings, key=lambda fi: (fi.path, fi.line, fi.rule)):
        if fi.key() in baseline_keys:
            tolerated.append(fi)
        else:
            fresh.append(fi)
    for fi in fresh:
        print(fi.render(), file=out)
    for fi in tolerated:
        print(f"tolerated (baseline): {fi.render()}", file=out)
    if fresh:
        print(
            f"{label}: {len(fresh)} finding(s) "
            f"({len(tolerated)} baselined) in {num_files} file(s)",
            file=err,
        )
        return 1
    suffix = f", {len(tolerated)} baselined" if tolerated else ""
    print(f"{label}: clean ({num_files} files{suffix})", file=out)
    return 0


def collect_files(roots, exts=(".cpp", ".hpp", ".h", ".cc")):
    """Walks roots (files or directories) into a sorted file list.

    Returns (files, error_message_or_None).
    """
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        if not os.path.isdir(root):
            return [], f"no such path: {root}"
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(exts):
                    files.append(os.path.join(dirpath, name))
    files.sort()
    return files, None
