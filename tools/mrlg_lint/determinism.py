"""Determinism lint rules (the former tools/lint_determinism.py body,
rehomed onto the shared framework so effects and determinism share one
suppression syntax, one reporter, and one CI stage).

PR 1 made the parallel evaluation layer bit-identical at any thread
count; that contract dies silently if library code starts consuming
ambient nondeterminism. These rules reject the known leak paths:

  unordered-iter   Iterating an unordered container (range-for or
                   explicit begin()). Iteration order is unspecified.
  naked-assert     Plain assert() instead of MRLG_ASSERT/MRLG_DCHECK.
  stdout-io        std::cout / printf / puts in library code.
  wall-clock       Reading clocks outside src/util/.
  ambient-rng      rand()/std::mt19937/... outside src/util/.
  plan-order       Any unordered container in the order-critical files
                   of the region-parallel pipeline.
  timeline-isolation
                   Any serial-Tracer access token in the worker-visible
                   files (obs/timeline.*, obs/memres.*,
                   util/thread_pool.*). The Tracer is single-threaded by
                   contract (the two-tracer split, DESIGN.md); worker
                   paths record through the lock-free Timeline only.

Suppress a deliberate use with a one-line reason on the same line or
the line above:   // mrlg-lint: allow(<rule>) <reason>
"""

import os
import re

from .framework import Finding, SourceFile

# Rules that apply everywhere under the linted roots.
GLOBAL_RULES = [
    (
        "naked-assert",
        re.compile(r"(?<![_\w])assert\s*\("),
        "use MRLG_ASSERT/MRLG_DCHECK (util/assert.hpp) instead of assert()",
    ),
    (
        "stdout-io",
        re.compile(r"std::cout|(?<![\w_])printf\s*\(|(?<![\w_])puts\s*\("),
        "library code must not write to stdout; use MRLG_LOG or return data",
    ),
]

# Rules from which src/util/ (the sanctioned wrappers) is exempt.
NON_UTIL_RULES = [
    (
        "wall-clock",
        re.compile(
            r"steady_clock|system_clock|high_resolution_clock"
            r"|(?<![\w_])std::time\s*\(|gettimeofday|(?<![\w_])clock\s*\(\)"
        ),
        "read time through util/timer.hpp only",
    ),
    (
        "ambient-rng",
        re.compile(
            r"(?<![\w_])rand\s*\(|(?<![\w_])srand\s*\(|random_device"
            r"|mt19937|default_random_engine|random_shuffle"
        ),
        "use util/rng.hpp (explicit seed) for all randomness",
    ),
]

# Files whose iteration order is load-bearing for the plan/commit
# pipeline's serial-equivalence argument (legalize/pipeline.hpp).
# Unordered containers are rejected here entirely, not just iteration.
ORDER_CRITICAL_FILES = (
    os.path.join("legalize", "pipeline.hpp"),
    os.path.join("legalize", "pipeline.cpp"),
    os.path.join("legalize", "legalizer.cpp"),
)

UNORDERED_USE_RE = re.compile(r"unordered_(?:map|set|multimap|multiset)")

# Files that run on (or are reachable from) pool worker threads. The
# serial Tracer (obs/trace.hpp) is single-threaded by contract, so any
# Tracer access token here is a data race waiting to happen — workers
# must record through the lock-free Timeline instead. Matched as path
# fragments so both the .hpp and .cpp of each unit are covered.
TRACER_ISOLATED_FILES = (
    os.path.join("obs", "timeline."),
    os.path.join("obs", "memres."),
    os.path.join("util", "thread_pool."),
)

TRACER_ACCESS_RE = re.compile(
    r"(?<![\w_])(?:current_tracer|set_current_tracer|ScopedTracer"
    r"|TracerPause|ScopedPhase|Tracer|MRLG_OBS_\w+)(?![\w_])"
)

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>[&\s]*(\w+)\s*[;={(,)]"
)
RANGE_FOR_RE = re.compile(r"for\s*\(.*?:\s*&?\s*\*?\s*([\w.\->:]+)\s*\)")
DIRECT_UNORDERED_ITER_RE = re.compile(
    r"for\s*\(.*:\s*[^)]*unordered_(?:map|set|multimap|multiset)"
)


def lint_file(path, findings):
    try:
        sf = SourceFile.load(path)
    except OSError as e:
        findings.append(Finding("io-error", path, 0, str(e)))
        return

    in_util = os.sep + "util" + os.sep in path
    rules = list(GLOBAL_RULES) + ([] if in_util else NON_UTIL_RULES)
    order_critical = path.endswith(ORDER_CRITICAL_FILES)
    tracer_isolated = any(frag in path for frag in TRACER_ISOLATED_FILES)

    # Pass 1: names declared as unordered containers in this file
    # (including references bound to one, the common aliasing pattern).
    unordered_names = set()
    for code in sf.code_lines:
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))

    for idx, code in enumerate(sf.code_lines):
        lineno = idx + 1
        if (
            order_critical
            and UNORDERED_USE_RE.search(code)
            and not sf.allowed(idx, "plan-order")
        ):
            findings.append(
                Finding(
                    "plan-order",
                    path,
                    lineno,
                    "order-critical pipeline file: unordered containers "
                    "are banned here (serial-equivalence depends on "
                    "deterministic iteration)",
                )
            )
        if (
            tracer_isolated
            and TRACER_ACCESS_RE.search(code)
            and not sf.allowed(idx, "timeline-isolation")
        ):
            findings.append(
                Finding(
                    "timeline-isolation",
                    path,
                    lineno,
                    "worker-visible file: the serial Tracer "
                    "(obs/trace.hpp) is single-threaded by contract — "
                    "record through the lock-free Timeline instead",
                )
            )
        for rule, pattern, advice in rules:
            if pattern.search(code) and not sf.allowed(idx, rule):
                if rule == "naked-assert" and "static_assert" in code:
                    # static_assert is compile-time and always on.
                    if not re.search(r"(?<!static_)assert\s*\(", code):
                        continue
                findings.append(Finding(rule, path, lineno, advice))
        if sf.allowed(idx, "unordered-iter"):
            continue
        m = RANGE_FOR_RE.search(code)
        hit = DIRECT_UNORDERED_ITER_RE.search(code) is not None
        if not hit and m is not None:
            # Range-for over a variable declared unordered in this file.
            base = m.group(1).split(".")[0].split("->")[0]
            hit = base in unordered_names
        if hit:
            findings.append(
                Finding(
                    "unordered-iter",
                    path,
                    lineno,
                    "iteration order of unordered containers is "
                    "unspecified; sort or use an ordered container",
                )
            )


def analyze(files):
    findings = []
    for path in files:
        lint_file(path, findings)
    return findings
