/// mrlg_legalize — the canonical end-to-end legalization driver: read a
/// design (Bookshelf, LEF/DEF, or a generated synthetic one), legalize it
/// with the DAC'16 multi-row flow, optionally run detailed placement, and
/// emit the machine-readable run report (docs/REPORT.md) that every mrlg
/// reporting surface shares. Exit code: 0 on success (all cells placed,
/// result legal), 1 on failure, 2 on usage or parse errors.
///
/// Usage:
///   mrlg_legalize <design.aux> [options]
///   mrlg_legalize --lef tech.lef --def design.def [options]
///   mrlg_legalize --gen [options]
///     --gen             legalize a synthetic benchmark
///     --singles N       generator: single-row cells   (default 2000)
///     --doubles N       generator: double-row cells   (default 200)
///     --density D       generator: target density     (default 0.6)
///     --gen-seed S      generator: rng seed           (default 1)
///     --seed S          legalizer rng seed            (default 1)
///     --threads T       evaluation threads, 0 = MRLG_THREADS (default 0)
///     --rx N / --ry N   MLL window radii              (default 30 / 5)
///     --exact           exact insertion-point evaluation ("ILP" config)
///     --relaxed         drop the power-rail parity constraint
///     --dp              run the detailed placer afterwards
///     --report FILE     write the JSON run report to FILE
///     --trace FILE      write a Chrome trace-event / Perfetto JSON
///                       timeline of the parallel pipeline to FILE
///     --deterministic   counted-tick tracer clock: the report becomes a
///                       pure function of the execution path (golden mode)
///     --out DIR         write the legalized design as Bookshelf into DIR
///     --quiet           suppress the stdout summary

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "db/segment.hpp"
#include "dp/detailed_placer.hpp"
#include "eval/report.hpp"
#include "io/benchmark_gen.hpp"
#include "io/bookshelf.hpp"
#include "io/lefdef.hpp"
#include "legalize/legalizer.hpp"
#include "obs/run_report.hpp"

using namespace mrlg;

namespace {

const char* find_arg(int argc, char** argv, const char* key) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], key) == 0) {
            return argv[i + 1];
        }
    }
    return nullptr;
}

bool has_flag(int argc, char** argv, const char* key) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], key) == 0) {
            return true;
        }
    }
    return false;
}

int usage() {
    std::cerr
        << "usage: mrlg_legalize <design.aux> | --lef L --def D | --gen\n"
           "       [--singles N] [--doubles N] [--density D] [--gen-seed S]\n"
           "       [--seed S] [--threads T] [--rx N] [--ry N] [--exact]\n"
           "       [--relaxed] [--dp] [--report FILE] [--trace FILE]\n"
           "       [--deterministic] [--out DIR] [--quiet]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    Database db;
    std::string design = "design";

    if (has_flag(argc, argv, "--gen")) {
        GenProfile p;
        p.name = "legalize-gen";
        p.num_single = 2000;
        p.num_double = 200;
        p.density = 0.6;
        if (const char* s = find_arg(argc, argv, "--singles")) {
            p.num_single = static_cast<std::size_t>(std::atol(s));
        }
        if (const char* s = find_arg(argc, argv, "--doubles")) {
            p.num_double = static_cast<std::size_t>(std::atol(s));
        }
        if (const char* s = find_arg(argc, argv, "--density")) {
            p.density = std::atof(s);
        }
        if (const char* s = find_arg(argc, argv, "--gen-seed")) {
            p.seed = static_cast<std::uint64_t>(std::atoll(s));
        }
        GenResult gen = generate_benchmark(p);
        db = std::move(gen.db);
        design = p.name;
    } else if (find_arg(argc, argv, "--lef") != nullptr &&
               find_arg(argc, argv, "--def") != nullptr) {
        try {
            const LefLibrary lef = read_lef(find_arg(argc, argv, "--lef"));
            DefReadResult r = read_def(find_arg(argc, argv, "--def"), lef);
            db = std::move(r.db);
            design = r.design_name;
        } catch (const LefDefError& e) {
            std::cerr << "parse error: " << e.what() << "\n";
            return 2;
        }
        db.freeze_fixed_cells();
    } else if (argc >= 2 && argv[1][0] != '-') {
        try {
            BookshelfReadResult r = read_bookshelf(argv[1]);
            db = std::move(r.db);
            design = r.design_name;
        } catch (const ParseError& e) {
            std::cerr << "parse error: " << e.what() << "\n";
            return 2;
        }
        db.freeze_fixed_cells();
    } else {
        return usage();
    }

    LegalizerOptions opts;
    if (const char* s = find_arg(argc, argv, "--seed")) {
        opts.seed = static_cast<std::uint64_t>(std::atoll(s));
    }
    if (const char* s = find_arg(argc, argv, "--threads")) {
        opts.num_threads = std::atoi(s);
    }
    if (const char* s = find_arg(argc, argv, "--rx")) {
        opts.mll.rx = static_cast<SiteCoord>(std::atol(s));
    }
    if (const char* s = find_arg(argc, argv, "--ry")) {
        opts.mll.ry = static_cast<SiteCoord>(std::atol(s));
    }
    opts.mll.exact_evaluation = has_flag(argc, argv, "--exact");
    opts.mll.check_rail = !has_flag(argc, argv, "--relaxed");
    const bool quiet = has_flag(argc, argv, "--quiet");

    // One tracer for the whole run; --deterministic swaps in counted
    // ticks so the report is reproducible byte for byte.
    obs::TickClock tick_clock;
    obs::WallClock wall_clock;
    const bool deterministic = has_flag(argc, argv, "--deterministic");
    obs::Tracer tracer(deterministic
                           ? static_cast<obs::Clock*>(&tick_clock)
                           : static_cast<obs::Clock*>(&wall_clock));
    obs::ScopedTracer install(tracer);

    // Wall-clock execution timeline for --trace and the (wall-only)
    // report `timeline` block. Harmless under --deterministic: the report
    // excludes it there, and goldens stay byte-identical.
    const char* trace_path = find_arg(argc, argv, "--trace");
    obs::Timeline timeline;
    obs::ScopedTimeline install_timeline(timeline);

    SegmentGrid grid = SegmentGrid::build(db);
    LegalizerStats stats;
    try {
        stats = legalize_placement(db, grid, opts);
        if (has_flag(argc, argv, "--dp")) {
            DetailedPlacementOptions dopts;
            dopts.mll = opts.mll;
            detailed_place(db, grid, dopts);
        }
    } catch (const AssertionError& e) {
        std::cerr << design << ": in-run audit failed:\n" << e.what()
                  << "\n";
        return 1;
    }

    obs::RunReportSpec spec;
    spec.tool = "mrlg_legalize";
    spec.design = design;
    spec.db = &db;
    spec.grid = &grid;
    spec.check_rail = opts.mll.check_rail;
    spec.num_threads = opts.num_threads;
    spec.options = &opts;
    spec.stats = &stats;
    spec.tracer = &tracer;
    spec.timeline = &timeline;
    const obs::Json report = obs::make_run_report(spec);
    if (const char* path = find_arg(argc, argv, "--report")) {
        if (!obs::write_json_file(path, report)) {
            return 2;
        }
    }
    if (trace_path != nullptr) {
        if (!obs::write_chrome_trace(trace_path, timeline,
                                     "mrlg_legalize " + design)) {
            return 2;
        }
    }

    if (const char* dir = find_arg(argc, argv, "--out")) {
        try {
            write_bookshelf(db, dir, design + "_legal");
        } catch (const std::exception& e) {
            std::cerr << "write error: " << e.what() << "\n";
            return 2;
        }
    }

    const QualityReport quality =
        make_quality_report(db, grid, opts.mll.check_rail);
    if (!quiet) {
        std::cout << design << ": legalized " << stats.num_cells
                  << " cells in " << stats.rounds << " rounds ("
                  << stats.direct_placements << " direct, "
                  << stats.mll_successes << " MLL, "
                  << stats.fallback_placements << " fallback, "
                  << stats.ripup_placements << " rip-up)\n";
        print_quality_report(quality, std::cout);
    }
    return stats.success && quality.legal ? 0 : 1;
}
