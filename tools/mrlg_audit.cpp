/// mrlg_audit — on-demand invariant audit of a design (check/audit.hpp).
///
/// Reads a design (Bookshelf, LEF/DEF, or a generated synthetic one),
/// optionally legalizes it with the audit hooks armed, then runs the
/// database/segment-grid auditors at the requested level and prints the
/// report. Exit code: 0 when every audit passes, 1 on violations, 2 on
/// usage or parse errors.
///
/// Usage:
///   mrlg_audit <design.aux> [options]
///   mrlg_audit --lef tech.lef --def design.def [options]
///   mrlg_audit --gen [options]
///     --gen             audit a synthetic benchmark instead of a file
///     --singles N       generator: single-row cells   (default 2000)
///     --doubles N       generator: double-row cells   (default 200)
///     --density D       generator: target density     (default 0.6)
///     --seed S          generator: rng seed           (default 1)
///     --legalize        run the legalizer first, hooks at --level
///     --relaxed         drop the power-rail parity constraint
///     --level L         off|cheap|full (default: MRLG_VALIDATE, else full)
///     --report FILE     write the JSON run report (docs/REPORT.md)

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "check/audit.hpp"
#include "db/segment.hpp"
#include "io/benchmark_gen.hpp"
#include "io/bookshelf.hpp"
#include "io/lefdef.hpp"
#include "legalize/legalizer.hpp"
#include "obs/run_report.hpp"

using namespace mrlg;

namespace {

const char* find_arg(int argc, char** argv, const char* key) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], key) == 0) {
            return argv[i + 1];
        }
    }
    return nullptr;
}

bool has_flag(int argc, char** argv, const char* key) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], key) == 0) {
            return true;
        }
    }
    return false;
}

int usage() {
    std::cerr << "usage: mrlg_audit <design.aux> | --lef L --def D | --gen\n"
                 "       [--singles N] [--doubles N] [--density D] [--seed S]\n"
                 "       [--legalize] [--relaxed] [--level off|cheap|full]\n"
                 "       [--report FILE]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    Database db;
    std::string design = "design";

    if (has_flag(argc, argv, "--gen")) {
        GenProfile p;
        p.name = "audit-gen";
        if (const char* s = find_arg(argc, argv, "--singles")) {
            p.num_single = static_cast<std::size_t>(std::atol(s));
        }
        if (const char* s = find_arg(argc, argv, "--doubles")) {
            p.num_double = static_cast<std::size_t>(std::atol(s));
        }
        if (const char* s = find_arg(argc, argv, "--density")) {
            p.density = std::atof(s);
        }
        if (const char* s = find_arg(argc, argv, "--seed")) {
            p.seed = static_cast<std::uint64_t>(std::atoll(s));
        }
        GenResult gen = generate_benchmark(p);
        db = std::move(gen.db);
        design = p.name;
    } else if (find_arg(argc, argv, "--lef") != nullptr &&
               find_arg(argc, argv, "--def") != nullptr) {
        try {
            const LefLibrary lef = read_lef(find_arg(argc, argv, "--lef"));
            DefReadResult r = read_def(find_arg(argc, argv, "--def"), lef);
            db = std::move(r.db);
            design = r.design_name;
        } catch (const LefDefError& e) {
            std::cerr << "parse error: " << e.what() << "\n";
            return 2;
        }
        db.freeze_fixed_cells();
    } else if (argc >= 2 && argv[1][0] != '-') {
        try {
            BookshelfReadResult r = read_bookshelf(argv[1]);
            db = std::move(r.db);
            design = r.design_name;
        } catch (const ParseError& e) {
            std::cerr << "parse error: " << e.what() << "\n";
            return 2;
        }
        db.freeze_fixed_cells();
    } else {
        return usage();
    }

    AuditLevel level = audit_level_from_env();
    if (const char* l = find_arg(argc, argv, "--level")) {
        const std::string v(l);
        if (v == "off") {
            level = AuditLevel::kOff;
        } else if (v == "cheap") {
            level = AuditLevel::kCheap;
        } else if (v == "full") {
            level = AuditLevel::kFull;
        } else {
            return usage();
        }
    } else if (level == AuditLevel::kOff) {
        level = AuditLevel::kFull;  // explicit CLI run: audit for real
    }
    const bool check_rail = !has_flag(argc, argv, "--relaxed");

    // Trace the run so --report can serialize phases and audit counters.
    obs::Tracer tracer;
    obs::ScopedTracer install(tracer);

    SegmentGrid grid = SegmentGrid::build(db);
    LegalizerOptions opts;
    LegalizerStats stats;
    bool legalized = false;
    if (has_flag(argc, argv, "--legalize")) {
        opts.mll.check_rail = check_rail;
        opts.audit = level;
        try {
            stats = legalize_placement(db, grid, opts);
            legalized = true;
            std::cout << design << ": legalized " << stats.num_cells
                      << " cells in " << stats.runtime_s << " s, "
                      << stats.audits_run << " in-run audits at level "
                      << to_string(level) << "\n";
            if (!stats.success) {
                std::cerr << design << ": " << stats.unplaced
                          << " cells left unplaced\n";
            }
        } catch (const AssertionError& e) {
            std::cerr << design << ": in-run audit failed:\n"
                      << e.what() << "\n";
            return 1;
        }
    }

    const AuditReport report = audit_placement(db, grid, level, check_rail);
    std::cout << design << ": " << report.to_string() << "\n";

    if (const char* path = find_arg(argc, argv, "--report")) {
        obs::RunReportSpec spec;
        spec.tool = "mrlg_audit";
        spec.design = design;
        spec.db = &db;
        spec.grid = &grid;
        spec.check_rail = check_rail;
        if (legalized) {
            spec.options = &opts;
            spec.stats = &stats;
        }
        spec.tracer = &tracer;
        if (!obs::write_run_report(path, spec)) {
            return 2;
        }
    }
    return report.ok() ? 0 : 1;
}
