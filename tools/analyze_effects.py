#!/usr/bin/env python3
"""Phase-effect analyzer entry point: proves the plan phase of the
region-parallel pipeline read-only. Thin wrapper over

    tools/mrlg_lint.py effects [paths...] [options]

which carries the full rule documentation (mrlg_lint/effects.py). Kept
as a separate executable so docs, CI, and humans have a name that says
what it checks.

Usage: tools/analyze_effects.py [paths...] [--root DIR]
       [--baseline FILE] [--update-baseline] [--compile-commands F]
Exit:  0 clean, 1 findings, 2 usage error.
"""

import importlib.util
import os
import sys


def _load_cli():
    # tools/mrlg_lint.py shadows the mrlg_lint package by name, so load
    # it by path instead of by import.
    here = os.path.dirname(os.path.abspath(__file__))
    spec = importlib.util.spec_from_file_location(
        "mrlg_lint_cli", os.path.join(here, "mrlg_lint.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


if __name__ == "__main__":
    cli = _load_cli()
    sys.exit(cli.main([sys.argv[0], "effects"] + sys.argv[1:]))
