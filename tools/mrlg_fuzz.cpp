/// mrlg_fuzz — differential fuzz driver for the legalization stack
/// (src/qa). Generates seeded adversarial cases, runs every independent
/// implementation against its oracle twin, shrinks any mismatch to a
/// minimal repro and (optionally) dumps it as a replayable Bookshelf
/// design. Bit-reproducible: the same --seed yields the same report at
/// any --threads value. Exit code: 0 when all oracles agree, 1 on a
/// divergence, 2 on usage errors.
///
/// Usage:
///   mrlg_fuzz [options]
///   mrlg_fuzz --replay repro.aux
///     --seed S          master seed                    (default 1)
///     --iters N         iterations per scenario        (default 50,
///                       or the MRLG_FUZZ_ITERS environment variable)
///     --threads T       MLL scan threads, 0 = env default (default 0)
///     --scenario NAME   restrict to one scenario:
///                       legality|local|mll|ripup|design (default: all)
///     --out DIR         dump shrunk repros under DIR
///     --no-shrink       keep failing cases at full size
///     --no-ilp          skip the MIP cross-check
///     --max-failures N  stop after N divergences       (default 8)
///     --report FILE     write the JSON run report (docs/REPORT.md)
///     --trace FILE      write a Chrome trace-event / Perfetto JSON
///                       timeline of the campaign's parallel phases
///     --replay FILE.aux replay a dumped repro instead of fuzzing

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/run_report.hpp"
#include "qa/fuzz.hpp"

using namespace mrlg;

namespace {

const char* find_arg(int argc, char** argv, const char* key) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], key) == 0) {
            return argv[i + 1];
        }
    }
    return nullptr;
}

bool has_flag(int argc, char** argv, const char* key) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], key) == 0) {
            return true;
        }
    }
    return false;
}

int usage() {
    std::cerr << "usage: mrlg_fuzz [--seed S] [--iters N] [--threads T]\n"
                 "       [--scenario legality|local|mll|ripup|design]\n"
                 "       [--out DIR] [--no-shrink] [--no-ilp]\n"
                 "       [--max-failures N] [--report FILE] [--trace FILE]\n"
                 "       | --replay repro.aux\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (const char* aux = find_arg(argc, argv, "--replay")) {
        try {
            const std::string diff = qa::replay_repro(aux);
            if (diff.empty()) {
                std::cout << aux << ": all oracles agree\n";
                return 0;
            }
            std::cout << aux << ": " << diff << "\n";
            return 1;
        } catch (const std::exception& e) {
            std::cerr << aux << ": " << e.what() << "\n";
            return 2;
        }
    }

    qa::FuzzOptions opts;
    if (const char* env = std::getenv("MRLG_FUZZ_ITERS")) {
        opts.iters = std::atoi(env);
    }
    if (const char* s = find_arg(argc, argv, "--seed")) {
        opts.seed = static_cast<std::uint64_t>(std::atoll(s));
    }
    if (const char* s = find_arg(argc, argv, "--iters")) {
        opts.iters = std::atoi(s);
    }
    if (const char* s = find_arg(argc, argv, "--threads")) {
        opts.num_threads = std::atoi(s);
    }
    if (const char* s = find_arg(argc, argv, "--max-failures")) {
        opts.max_failures = std::atoi(s);
    }
    if (const char* s = find_arg(argc, argv, "--out")) {
        opts.repro_dir = s;
    }
    if (const char* s = find_arg(argc, argv, "--scenario")) {
        qa::FuzzScenario scen{};
        if (!qa::scenario_from_string(s, scen)) {
            return usage();
        }
        opts.scenarios.push_back(scen);
    }
    opts.shrink = !has_flag(argc, argv, "--no-shrink");
    opts.exercise_ilp = !has_flag(argc, argv, "--no-ilp");
    if (opts.iters <= 0) {
        return usage();
    }

    obs::Tracer tracer;
    obs::Timeline timeline;
    qa::FuzzReport report;
    {
        obs::ScopedTracer install(tracer);
        obs::ScopedTimeline install_timeline(timeline);
        report = qa::run_fuzz(opts);
    }
    std::cout << "mrlg_fuzz seed " << opts.seed << ": " << report.summary();
    if (const char* path = find_arg(argc, argv, "--report")) {
        obs::RunReportSpec spec;
        spec.tool = "mrlg_fuzz";
        spec.design = "fuzz-seed-" + std::to_string(opts.seed);
        spec.num_threads = opts.num_threads;
        spec.tracer = &tracer;
        spec.timeline = &timeline;
        if (!obs::write_run_report(path, spec)) {
            return 2;
        }
    }
    if (const char* path = find_arg(argc, argv, "--trace")) {
        if (!obs::write_chrome_trace(
                path, timeline,
                "mrlg_fuzz seed " + std::to_string(opts.seed))) {
            return 2;
        }
    }
    return report.ok() ? 0 : 1;
}
