#!/usr/bin/env python3
"""Validate a Chrome trace-event / Perfetto JSON file (tools --trace).

Checks the subset of the trace-event format that mrlg emits (see
https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):

  * root object with a `traceEvents` array and `otherData` metadata
    (dropped_events, lanes);
  * every event has string `ph`/`name` and integer `pid`/`tid`;
  * `ph:"M"` metadata events name the process and each thread exactly once
    per tid, before any of that tid's timed events;
  * `ph:"X"` complete events carry non-negative numeric `ts` and `dur`
    (fractional microseconds are legal trace-event timestamps);
  * `ph:"i"` instants carry `ts` and scope `s` in {t, p, g};
  * event `args` key/wave/slot/task values are non-negative integers.

Exit code 0 when the file validates, 1 with a diagnostic otherwise.
Usage: validate_trace.py TRACE.json [TRACE2.json ...]
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: INVALID: {msg}")
    return False


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or not JSON ({e})")

    if not isinstance(root, dict):
        return fail(path, "root is not an object")
    events = root.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "missing traceEvents array")
    other = root.get("otherData")
    if not isinstance(other, dict):
        return fail(path, "missing otherData object")
    for key in ("dropped_events", "lanes"):
        if not isinstance(other.get(key), int) or other[key] < 0:
            return fail(path, f"otherData.{key} missing or negative")

    process_named = False
    thread_named = set()  # tids with a thread_name metadata event
    timed_tids = set()
    spans = instants = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            return fail(path, f"{where} is not an object")
        ph = ev.get("ph")
        name = ev.get("name")
        if not isinstance(ph, str) or not isinstance(name, str) or not name:
            return fail(path, f"{where}: ph/name missing or not strings")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int) or ev[key] < 0:
                return fail(path, f"{where}: {key} missing or negative")

        if ph == "M":
            if name == "process_name":
                process_named = True
            elif name == "thread_name":
                if ev["tid"] in thread_named:
                    return fail(path,
                                f"{where}: duplicate thread_name for tid "
                                f"{ev['tid']}")
                if ev["tid"] in timed_tids:
                    return fail(path,
                                f"{where}: thread_name after timed events "
                                f"of tid {ev['tid']}")
                thread_named.add(ev["tid"])
            else:
                return fail(path, f"{where}: unknown metadata '{name}'")
            args = ev.get("args")
            if not isinstance(args, dict) or "name" not in args:
                return fail(path, f"{where}: metadata without args.name")
            continue

        if ph not in ("X", "i"):
            return fail(path, f"{where}: unexpected phase '{ph}'")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            return fail(path, f"{where}: ts missing or negative")
        timed_tids.add(ev["tid"])
        if ph == "X":
            dur = ev.get("dur")
            if (not isinstance(dur, (int, float)) or isinstance(dur, bool)
                    or dur < 0):
                return fail(path, f"{where}: dur missing or negative")
            spans += 1
        else:
            if ev.get("s") not in ("t", "p", "g"):
                return fail(path, f"{where}: instant without scope s")
            instants += 1
        args = ev.get("args")
        if args is not None:
            if not isinstance(args, dict):
                return fail(path, f"{where}: args is not an object")
            for key in ("wave", "slot", "task"):
                if key in args and (not isinstance(args[key], int)
                                    or args[key] < 0):
                    return fail(path,
                                f"{where}: args.{key} not a non-negative "
                                f"integer")

    if not process_named:
        return fail(path, "no process_name metadata event")
    unnamed = sorted(timed_tids - thread_named)
    if unnamed:
        return fail(path, f"tids without thread_name metadata: {unnamed}")

    print(f"{path}: OK ({spans} spans, {instants} instants, "
          f"{len(timed_tids)} threads, "
          f"{other['dropped_events']} dropped)")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-1])
        return 1
    ok = all([validate(p) for p in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
